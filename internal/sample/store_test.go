package sample

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/trace"
)

func warmInputs(t *testing.T, warmup int64) (config.SystemConfig, *trace.Workload, *trace.Materialized) {
	t.Helper()
	w := testWorkload(t, "mcf")
	m, err := trace.NewStore("").Materialize(w, warmup)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return config.WithCATCH(config.BaselineExclusive(), "catch-sample"), w, m
}

func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.warm"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return files
}

// TestStorePersistRoundTrip pins the disk layer: a second store over
// the same directory serves the image from disk, byte-identical, with
// no fresh warmup.
func TestStorePersistRoundTrip(t *testing.T) {
	const warmup = 1_000
	cfg, w, m := warmInputs(t, warmup)
	dir := t.TempDir()

	first := NewStore(dir)
	img, err := first.Warm(cfg, w, m, warmup)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if st := first.Stats(); st.Built != 1 {
		t.Errorf("stats after first warm = %+v, want one build", st)
	}
	if len(snapFiles(t, dir)) != 1 {
		t.Fatal("no snapshot file persisted")
	}

	second := NewStore(dir)
	again, err := second.Warm(cfg, w, m, warmup)
	if err != nil {
		t.Fatalf("warm from disk: %v", err)
	}
	if !bytes.Equal(img, again) {
		t.Error("disk-loaded image differs from the freshly built one")
	}
	if st := second.Stats(); st.DiskHits != 1 || st.Built != 0 {
		t.Errorf("stats after disk load = %+v, want one disk hit and no builds", st)
	}

	// The memory layer answers repeats without touching disk again.
	if _, err := second.Warm(cfg, w, m, warmup); err != nil {
		t.Fatalf("memory hit: %v", err)
	}
	if st := second.Stats(); st.MemHits != 1 {
		t.Errorf("stats after repeat = %+v, want one memory hit", st)
	}
}

// TestStoreCorruptionRegenerates mirrors the trace store's corruption
// tests: a truncated or bit-flipped snapshot file is detected, deleted
// and regenerated with the correct contents.
func TestStoreCorruptionRegenerates(t *testing.T) {
	const warmup = 1_000
	cfg, w, m := warmInputs(t, warmup)

	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/3] ^= 0x10
			return c
		}},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xFF
			return c
		}},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			img, err := NewStore(dir).Warm(cfg, w, m, warmup)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			files := snapFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("want one snapshot file, got %d", len(files))
			}
			raw, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if err := os.WriteFile(files[0], tc.mut(raw), 0o644); err != nil {
				t.Fatalf("corrupt: %v", err)
			}

			s := NewStore(dir)
			again, err := s.Warm(cfg, w, m, warmup)
			if err != nil {
				t.Fatalf("warm over corrupt file: %v", err)
			}
			if !bytes.Equal(img, again) {
				t.Error("regenerated image differs from the original")
			}
			st := s.Stats()
			if st.BadDisk != 1 || st.Built != 1 || st.DiskHits != 0 {
				t.Errorf("stats = %+v, want the corrupt file detected and a fresh build", st)
			}
			// The regenerated file is valid for the next process.
			if st := NewStore(dir); true {
				if _, err := st.Warm(cfg, w, m, warmup); err != nil {
					t.Fatalf("warm after regeneration: %v", err)
				}
				if got := st.Stats(); got.DiskHits != 1 {
					t.Errorf("regenerated file not served from disk: %+v", got)
				}
			}
		})
	}
}

// TestStoreKeyMismatchRejected pins that a snapshot persisted under a
// different key (here: a different warmup length whose file was moved
// over ours) is rejected by the header guard, not silently restored.
func TestStoreKeyMismatchRejected(t *testing.T) {
	const warmup = 1_000
	cfg, w, m := warmInputs(t, 2*warmup)
	dir := t.TempDir()
	s := NewStore(dir)
	if _, err := s.Warm(cfg, w, m, warmup); err != nil {
		t.Fatalf("warm: %v", err)
	}
	files := snapFiles(t, dir)
	other := NewStore(dir)
	p, ok := other.path(warmKey{Fingerprint: mustFingerprint(t, &cfg), Name: w.WName, Seed: w.Seed, Warmup: 2 * warmup})
	if !ok {
		t.Fatal("no path for key")
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatalf("plant: %v", err)
	}
	if _, err := other.Warm(cfg, w, m, 2*warmup); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if st := other.Stats(); st.BadDisk != 1 || st.Built != 1 {
		t.Errorf("stats = %+v, want the planted file rejected and a fresh build", st)
	}
}

func mustFingerprint(t *testing.T, cfg *config.SystemConfig) uint64 {
	t.Helper()
	fp, err := core.ConfigFingerprint(cfg)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

// TestStoreConcurrent hammers one store from many goroutines across a
// mix of keys; run under -race it doubles as the data-race guard. All
// callers of one key must observe the identical image.
func TestStoreConcurrent(t *testing.T) {
	const warmup = 500
	cfg, w, m := warmInputs(t, 2*warmup)
	cfgB := config.BaselineExclusive()
	s := NewStore(t.TempDir())

	const callers = 8
	images := make([][]byte, callers*2)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			img, err := s.Warm(cfg, w, m, warmup)
			if err != nil {
				t.Errorf("warm: %v", err)
			}
			images[i] = img
		}(i)
		go func(i int) {
			defer wg.Done()
			img, err := s.Warm(cfgB, w, m, 2*warmup)
			if err != nil {
				t.Errorf("warm: %v", err)
			}
			images[callers+i] = img
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if !bytes.Equal(images[0], images[i]) {
			t.Fatalf("caller %d observed a different image", i)
		}
		if !bytes.Equal(images[callers], images[callers+i]) {
			t.Fatalf("caller %d observed a different image for key B", i)
		}
	}
	if bytes.Equal(images[0], images[callers]) {
		t.Error("different keys yielded identical images")
	}
	st := s.Stats()
	if st.Built != 2 {
		t.Errorf("built %d images for 2 keys, want 2", st.Built)
	}
	if st.Coalesced+st.MemHits != callers*2-2 {
		t.Errorf("stats = %+v: coalesced+memHits should cover the other %d calls", st, callers*2-2)
	}
}
