package sample

import (
	"reflect"
	"strings"
	"testing"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/trace"
	"catch/internal/workloads"
)

func testWorkload(t *testing.T, name string) *trace.Workload {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s not found", name)
	}
	return &w
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		insts   int64
		wantErr string
	}{
		{"ok", Spec{Interval: 1000, K: 3}, 10_000, ""},
		{"k equals intervals", Spec{Interval: 1000, K: 10}, 10_000, ""},
		{"zero interval", Spec{Interval: 0, K: 3}, 10_000, "interval must be positive"},
		{"negative interval", Spec{Interval: -5, K: 3}, 10_000, "interval must be positive"},
		{"indivisible", Spec{Interval: 3000, K: 2}, 10_000, "evenly divide"},
		{"zero k", Spec{Interval: 1000, K: 0}, 10_000, "k must be positive"},
		{"k too large", Spec{Interval: 1000, K: 11}, 10_000, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(tc.insts)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// synthFeatures builds a deterministic pseudo-random feature matrix.
func synthFeatures(n, dims int, seed uint64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dims)
		for d := range v {
			v[d] = float64(splitmix64(&seed)%1000) / 250
		}
		out[i] = v
	}
	return out
}

// TestClusterDeterministic pins the clustering's seed stability: the
// same (vectors, k, seed) input yields the same partition, every
// cluster is non-empty, and sizes sum to the interval count.
func TestClusterDeterministic(t *testing.T) {
	vecs := synthFeatures(40, FeatureDim, 7)
	a := Cluster(vecs, 5, 12345)
	b := Cluster(synthFeatures(40, FeatureDim, 7), 5, 12345)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same input clustered differently:\n a %+v\n b %+v", a, b)
	}
	total := 0
	for c, size := range a.Sizes {
		if size == 0 {
			t.Errorf("cluster %d is empty", c)
		}
		total += size
		rep := a.Reps[c]
		if rep < 0 || rep >= len(vecs) {
			t.Fatalf("cluster %d representative %d out of range", c, rep)
		}
		if a.Assign[rep] != c {
			t.Errorf("cluster %d representative %d assigned to cluster %d", c, rep, a.Assign[rep])
		}
	}
	if total != len(vecs) {
		t.Errorf("cluster sizes sum to %d, want %d", total, len(vecs))
	}
}

// TestClusterDegenerate covers k=1 and identical points (zero
// variance), which must not divide by zero or loop forever.
func TestClusterDegenerate(t *testing.T) {
	flat := make([][]float64, 8)
	for i := range flat {
		flat[i] = make([]float64, FeatureDim)
	}
	cl := Cluster(flat, 3, 9)
	total := 0
	for _, s := range cl.Sizes {
		if s == 0 {
			t.Error("empty cluster on identical points")
		}
		total += s
	}
	if total != len(flat) {
		t.Errorf("sizes sum to %d, want %d", total, len(flat))
	}
	one := Cluster(synthFeatures(6, 4, 3), 1, 0)
	if one.Sizes[0] != 6 {
		t.Errorf("k=1 cluster size = %d, want 6", one.Sizes[0])
	}
}

// TestPlannerExactWhenKEqualsN is the sampling analogue of the
// snapshot round-trip golden test: with one cluster per interval the
// planner simulates every interval, so the "extrapolation" must
// reproduce the full RunST result exactly — same cycles, same cache
// and DRAM counters, same TACT and criticality totals. Only the
// instantaneous CriticalPCs gauge (read at one representative rather
// than at the stream end) and the SampleMeta block are exempt.
func TestPlannerExactWhenKEqualsN(t *testing.T) {
	const insts, warmup, interval = 6_000, 3_000, 500
	w := testWorkload(t, "mcf")
	for _, cfg := range []config.SystemConfig{
		config.BaselineExclusive(),
		config.WithCATCH(config.BaselineExclusive(), "catch-sample"),
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			p := NewPlanner(nil, nil)
			spec := Spec{Interval: interval, K: int(insts / interval)}
			got, err := p.Run(cfg, w, insts, warmup, spec)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got.Sample == nil {
				t.Fatal("sampled result carries no SampleMeta")
			}
			if got.Sample.MeasuredInsts != insts {
				t.Errorf("MeasuredInsts = %d, want %d", got.Sample.MeasuredInsts, insts)
			}

			m, err := p.traces.Materialize(w, warmup+insts)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			want := core.NewSystem(cfg).RunST(m.NewReplay(), insts, warmup)

			got.Sample = nil
			got.CriticalPCs, want.CriticalPCs = 0, 0
			if !reflect.DeepEqual(got, want) {
				t.Errorf("k=n sampled result diverged from full simulation:\n got  %+v\n want %+v", got, want)
			}
		})
	}
}

// TestPlannerDeterministic pins that two planners given the same
// inputs produce identical results, including the error bars.
func TestPlannerDeterministic(t *testing.T) {
	const insts, warmup = 6_000, 2_000
	w := testWorkload(t, "libquantum")
	cfg := config.WithCATCH(config.BaselineExclusive(), "catch-sample")
	spec := Spec{Interval: 500, K: 3}
	a, err := NewPlanner(nil, nil).Run(cfg, w, insts, warmup, spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := NewPlanner(nil, nil).Run(cfg, w, insts, warmup, spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same sampled job produced different results:\n a %+v\n b %+v", a, b)
	}
	if a.Insts != insts {
		t.Errorf("extrapolated Insts = %d, want %d", a.Insts, insts)
	}
	if a.Sample.MeasuredInsts*2 > insts {
		t.Errorf("measured %d of %d instructions — sampling simulated more than half the run",
			a.Sample.MeasuredInsts, insts)
	}
}

// TestPlannerProfileShared pins the grid economics: two configs of the
// same workload share one profile and get separate warm snapshots.
func TestPlannerProfileShared(t *testing.T) {
	const insts, warmup = 4_000, 1_000
	w := testWorkload(t, "mcf")
	p := NewPlanner(nil, nil)
	spec := Spec{Interval: 500, K: 2}
	cfgA := config.BaselineExclusive()
	cfgB := config.WithCATCH(config.BaselineExclusive(), "catch-sample")
	if _, err := p.Run(cfgA, w, insts, warmup, spec); err != nil {
		t.Fatalf("Run A: %v", err)
	}
	if _, err := p.Run(cfgB, w, insts, warmup, spec); err != nil {
		t.Fatalf("Run B: %v", err)
	}
	ps := p.Stats()
	if ps.Profiled != 1 || ps.ProfileHits != 1 {
		t.Errorf("profile stats = %+v, want exactly one build and one hit", ps)
	}
	ss := p.Snapshots().Stats()
	if ss.Built != 2 {
		t.Errorf("snapshot builds = %d, want 2 (one per config)", ss.Built)
	}
}
