package sample

import (
	"fmt"
	"sort"
	"sync"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/stats"
	"catch/internal/trace"
)

// Spec parameterizes sampled simulation of one job.
type Spec struct {
	// Interval is the fixed interval length in instructions; it must
	// evenly divide the measured instruction budget.
	Interval int64
	// K is the cluster count — the number of representative intervals
	// actually simulated per (config, workload) pair.
	K int
}

// Validate checks the spec against a measured instruction budget.
func (sp Spec) Validate(insts int64) error {
	if sp.Interval <= 0 {
		return fmt.Errorf("sample: interval must be positive, got %d", sp.Interval)
	}
	if insts <= 0 || insts%sp.Interval != 0 {
		return fmt.Errorf("sample: interval %d must evenly divide insts %d", sp.Interval, insts)
	}
	n := insts / sp.Interval
	if sp.K <= 0 {
		return fmt.Errorf("sample: k must be positive, got %d", sp.K)
	}
	if int64(sp.K) > n {
		return fmt.Errorf("sample: k %d exceeds the %d intervals of insts %d at interval %d",
			sp.K, n, insts, sp.Interval)
	}
	return nil
}

// profileKey identifies one cached workload profile. The profile is a
// pure function of the stream (name, seed, budgets) and the interval
// length — the sweep's configs do not appear, which is what lets one
// profile serve a whole grid.
type profileKey struct {
	Name     string
	Seed     uint64
	Insts    int64
	Warmup   int64
	Interval int64
}

type profileFlight struct {
	ch   chan struct{}
	prof *Profile
	err  error
}

// PlannerStats counts planner activity.
type PlannerStats struct {
	Profiled         uint64 `json:"profiled"`
	ProfileHits      uint64 `json:"profileHits"`
	ProfileCoalesced uint64 `json:"profileCoalesced"`
	Runs             uint64 `json:"runs"`
}

// Planner runs sampled simulations: profile once per (workload,
// budgets, interval), cluster deterministically, warm once per
// (config, workload, warmup) through the snapshot store, then simulate
// only the representative intervals and extrapolate. Safe for
// concurrent use by the engine's workers.
type Planner struct {
	traces *trace.Store
	snaps  *Store

	mu       sync.Mutex
	profiles map[profileKey]*Profile
	inflight map[profileKey]*profileFlight

	profiled         stats.AtomicCounter
	profileHits      stats.AtomicCounter
	profileCoalesced stats.AtomicCounter
	runs             stats.AtomicCounter
}

// NewPlanner builds a planner over the given trace and snapshot
// stores. A nil snaps keeps snapshots in memory only.
func NewPlanner(traces *trace.Store, snaps *Store) *Planner {
	if traces == nil {
		traces = trace.NewStore("")
	}
	if snaps == nil {
		snaps = NewStore("")
	}
	return &Planner{
		traces:   traces,
		snaps:    snaps,
		profiles: make(map[profileKey]*Profile),
		inflight: make(map[profileKey]*profileFlight),
	}
}

// Stats snapshots the counters.
func (p *Planner) Stats() PlannerStats {
	return PlannerStats{
		Profiled:         p.profiled.Value(),
		ProfileHits:      p.profileHits.Value(),
		ProfileCoalesced: p.profileCoalesced.Value(),
		Runs:             p.runs.Value(),
	}
}

// Snapshots returns the planner's warm-snapshot store.
func (p *Planner) Snapshots() *Store { return p.snaps }

// Run produces a sampled estimate of RunST(cfg, w, insts, warmup):
// only K representative intervals are simulated in detail; unmeasured
// gaps between them are stepped to keep state exact. The result
// carries a SampleMeta with the measured-instruction count and error
// bars. Deterministic: the same inputs always yield the same Result.
func (p *Planner) Run(cfg config.SystemConfig, w *trace.Workload, insts, warmup int64, spec Spec) (core.Result, error) {
	if err := spec.Validate(insts); err != nil {
		return core.Result{}, err
	}
	p.runs.Inc()
	m, err := p.traces.Materialize(w, warmup+insts)
	if err != nil {
		return core.Result{}, err
	}
	prof, err := p.profile(m, insts, warmup, spec.Interval)
	if err != nil {
		return core.Result{}, err
	}
	cl := Cluster(prof.Features, spec.K, w.Seed)

	warm, err := p.snaps.Warm(cfg, w, m, warmup)
	if err != nil {
		return core.Result{}, err
	}
	sys := core.NewSystem(cfg)
	if err := sys.Restore(warm); err != nil {
		return core.Result{}, fmt.Errorf("sample: restore warm state: %w", err)
	}
	rep := m.NewReplay()
	rep.SeekTo(warmup)
	sys.AttachST(rep)
	warmBase := sys.CaptureCumulative()

	// Simulate representatives in stream order, stepping (not
	// skipping) the gaps so each window starts from exact state.
	order := make([]int, len(cl.Reps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cl.Reps[order[a]] < cl.Reps[order[b]] })
	perCluster := make([]core.Result, len(cl.Reps))
	pos := int64(0) // instructions stepped past warmup
	for _, c := range order {
		off := int64(cl.Reps[c]) * spec.Interval
		sys.StepST(off - pos)
		base := sys.CaptureCumulative()
		win := sys.BeginMeasure()
		sys.StepST(spec.Interval)
		perCluster[c] = sys.EndMeasureDelta(win, base)
		pos = off + spec.Interval
	}

	est := extrapolate(perCluster, cl, warmBase)
	ipcErr, l1dErr, memErr := relErrors(prof, cl)
	est.Sample = &core.SampleMeta{
		Interval:       spec.Interval,
		K:              spec.K,
		MeasuredInsts:  int64(spec.K) * spec.Interval,
		TotalInsts:     insts,
		RelErrIPC:      ipcErr,
		RelErrL1DMiss:  l1dErr,
		RelErrMemLoads: memErr,
	}
	return est, nil
}

// profile returns the cached profile for the key, computing it at most
// once across all concurrent callers.
func (p *Planner) profile(m *trace.Materialized, insts, warmup, interval int64) (*Profile, error) {
	key := profileKey{Name: m.Name(), Seed: m.Seed(), Insts: insts, Warmup: warmup, Interval: interval}
	p.mu.Lock()
	if prof := p.profiles[key]; prof != nil {
		p.mu.Unlock()
		p.profileHits.Inc()
		return prof, nil
	}
	if f := p.inflight[key]; f != nil {
		p.mu.Unlock()
		p.profileCoalesced.Inc()
		<-f.ch
		return f.prof, f.err
	}
	f := &profileFlight{ch: make(chan struct{})}
	p.inflight[key] = f
	p.mu.Unlock()

	prof, err := ProfileWorkload(m, insts, warmup, interval)
	if err == nil {
		p.profiled.Inc()
	}
	p.mu.Lock()
	delete(p.inflight, key)
	if err == nil {
		p.profiles[key] = prof
	}
	p.mu.Unlock()
	f.prof, f.err = prof, err
	close(f.ch)
	return prof, err
}
