package sample

import "math"

// Clustering is the outcome of clustering interval feature vectors.
type Clustering struct {
	// Assign maps each interval to its cluster.
	Assign []int
	// Reps holds, per cluster, the index of the member closest to the
	// centroid — the interval that gets simulated for the cluster.
	Reps []int
	// Sizes holds each cluster's member count (its extrapolation
	// weight). Every cluster is non-empty.
	Sizes []int
}

// kmeansIters is the fixed iteration budget. Lloyd's algorithm on a
// few dozen points converges in a handful of rounds; a fixed cap keeps
// the worst case bounded without sacrificing determinism (the loop
// also stops as soon as assignments stabilize).
const kmeansIters = 64

// Cluster groups feature vectors into k clusters with a seeded,
// fully deterministic k-means: dimensions are z-normalized, centers
// are initialized maximin-style from a splitmix64-seeded first pick,
// iteration order is fixed, and every tie breaks toward the lowest
// index. The same (vectors, k, seed) input always yields the same
// clustering, on any machine. k must be in [1, len(vecs)].
func Cluster(vecs [][]float64, k int, seed uint64) Clustering {
	n := len(vecs)
	pts := normalize(vecs)

	// Maximin init: a seeded first center, then repeatedly the point
	// farthest from its nearest chosen center.
	centers := make([][]float64, 0, k)
	first := int(splitmix64(&seed) % uint64(n))
	centers = append(centers, clone(pts[first]))
	for len(centers) < k {
		best, bestD := 0, -1.0
		for i := 0; i < n; i++ {
			d := nearestDist(pts[i], centers)
			if d > bestD {
				best, bestD = i, d
			}
		}
		centers = append(centers, clone(pts[best]))
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)
	for iter := 0; iter < kmeansIters; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			c := nearest(pts[i], centers)
			if c != assign[i] {
				assign[i] = c
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; an emptied cluster steals the point
		// farthest from its current center (deterministically).
		for c := 0; c < k; c++ {
			sizes[c] = 0
		}
		for i := 0; i < n; i++ {
			sizes[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if sizes[c] != 0 {
				continue
			}
			far, farD := 0, -1.0
			for i := 0; i < n; i++ {
				if sizes[assign[i]] <= 1 {
					continue // do not empty another cluster
				}
				if d := dist2(pts[i], centers[assign[i]]); d > farD {
					far, farD = i, d
				}
			}
			sizes[assign[far]]--
			assign[far] = c
			sizes[c] = 1
		}
		for c := range centers {
			for d := range centers[c] {
				centers[c][d] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := centers[assign[i]]
			for d := range c {
				c[d] += pts[i][d]
			}
		}
		for c := range centers {
			for d := range centers[c] {
				centers[c][d] /= float64(sizes[c])
			}
		}
	}

	// Representative: the member closest to its centroid, lowest index
	// on ties.
	reps := make([]int, k)
	repD := make([]float64, k)
	for c := range reps {
		reps[c] = -1
	}
	for i := 0; i < n; i++ {
		c := assign[i]
		d := dist2(pts[i], centers[c])
		if reps[c] < 0 || d < repD[c] {
			reps[c], repD[c] = i, d
		}
	}
	return Clustering{Assign: assign, Reps: reps, Sizes: sizes}
}

// normalize z-scores each dimension (population statistics) so no
// single raw scale dominates the distance metric. Constant dimensions
// map to zero.
func normalize(vecs [][]float64) [][]float64 {
	n := len(vecs)
	dims := len(vecs[0])
	mean := make([]float64, dims)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			mean[d] += vecs[i][d]
		}
	}
	for d := range mean {
		mean[d] /= float64(n)
	}
	sd := make([]float64, dims)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			diff := vecs[i][d] - mean[d]
			sd[d] += diff * diff
		}
	}
	for d := range sd {
		sd[d] = math.Sqrt(sd[d] / float64(n))
	}
	backing := make([]float64, n*dims)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := backing[i*dims : (i+1)*dims : (i+1)*dims]
		for d := 0; d < dims; d++ {
			if sd[d] > 0 {
				v[d] = (vecs[i][d] - mean[d]) / sd[d]
			}
		}
		out[i] = v
	}
	return out
}

func clone(v []float64) []float64 { return append([]float64(nil), v...) }

func dist2(a, b []float64) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// nearest returns the index of the closest center (lowest index wins
// ties, because only strict improvement switches).
func nearest(p []float64, centers [][]float64) int {
	best, bestD := 0, dist2(p, centers[0])
	for c := 1; c < len(centers); c++ {
		if d := dist2(p, centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func nearestDist(p []float64, centers [][]float64) float64 {
	bestD := dist2(p, centers[0])
	for c := 1; c < len(centers); c++ {
		if d := dist2(p, centers[c]); d < bestD {
			bestD = d
		}
	}
	return bestD
}

// splitmix64 advances the state and returns the next value of the
// SplitMix64 sequence — a tiny, seedable, allocation-free PRNG whose
// output is identical on every platform.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
