// Package sample is the representative-interval sampling subsystem:
// it profiles a workload's measurement region into fixed-length
// intervals, clusters the intervals with a small deterministic k-means,
// simulates only one representative per cluster from a warm-state
// snapshot, and extrapolates full-run statistics with per-metric error
// bars. Sweeps that share a (config, workload, warmup) tuple also share
// the warm snapshot, so a whole grid pays for warmup once.
package sample

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/snap"
	"catch/internal/stats"
	"catch/internal/trace"
)

// warmKey identifies one warm-state snapshot: the exact
// microarchitecture (config fingerprint) plus the exact warmup stream
// prefix (workload name, seed, warmup length). Both simulation and
// trace generation are pure functions of these inputs, so the image is
// fully determined by the key.
type warmKey struct {
	Fingerprint uint64
	Name        string
	Seed        uint64
	Warmup      int64
}

// StoreStats counts warm-snapshot store traffic. Coalesced requests
// waited on an identical in-flight warmup instead of running their own.
type StoreStats struct {
	Built     uint64 `json:"built"`
	MemHits   uint64 `json:"memHits"`
	Coalesced uint64 `json:"coalesced"`
	DiskHits  uint64 `json:"diskHits"`
	BadDisk   uint64 `json:"badDisk"` // corrupted on-disk snapshots replaced by a fresh warmup
}

// Store is a content-addressed memo of warm-state snapshots, built on
// the same pattern as trace.Store: each key is warmed at most once per
// process (concurrent requests coalesce onto a single warmup), and with
// a directory configured images persist as flat binary files so later
// processes skip the warmup simulation entirely. The disk layer is an
// optimization: every I/O failure silently degrades to warming in
// memory, and any corrupt file is deleted and regenerated.
type Store struct {
	dir string

	mu       sync.Mutex
	done     map[warmKey][]byte
	inflight map[warmKey]*warmFlight

	built     stats.AtomicCounter
	memHits   stats.AtomicCounter
	coalesced stats.AtomicCounter
	diskHits  stats.AtomicCounter
	badDisk   stats.AtomicCounter
}

type warmFlight struct {
	ch  chan struct{}
	img []byte
	err error
}

// NewStore builds a snapshot store. dir may be empty for a memory-only
// store; otherwise it is created on first persist.
func NewStore(dir string) *Store {
	return &Store{
		dir:      dir,
		done:     make(map[warmKey][]byte),
		inflight: make(map[warmKey]*warmFlight),
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Built:     s.built.Value(),
		MemHits:   s.memHits.Value(),
		Coalesced: s.coalesced.Value(),
		DiskHits:  s.diskHits.Value(),
		BadDisk:   s.badDisk.Value(),
	}
}

// Warm returns the snapshot image of a system built from cfg after
// warming it with the first warmup instructions of m, building the
// image at most once across all concurrent callers. The returned slice
// is shared and read-only to every consumer; m must hold at least
// warmup instructions of the workload w.
func (s *Store) Warm(cfg config.SystemConfig, w *trace.Workload, m *trace.Materialized, warmup int64) ([]byte, error) {
	if warmup < 0 {
		return nil, fmt.Errorf("sample: warmup must be non-negative, got %d", warmup)
	}
	fp, err := core.ConfigFingerprint(&cfg)
	if err != nil {
		return nil, err
	}
	key := warmKey{Fingerprint: fp, Name: w.WName, Seed: w.Seed, Warmup: warmup}
	s.mu.Lock()
	if img := s.done[key]; img != nil {
		s.mu.Unlock()
		s.memHits.Inc()
		return img, nil
	}
	if f := s.inflight[key]; f != nil {
		s.mu.Unlock()
		s.coalesced.Inc()
		<-f.ch
		return f.img, f.err
	}
	f := &warmFlight{ch: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	img, err := s.warm(cfg, m, key)
	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		s.done[key] = img
	}
	s.mu.Unlock()
	f.img, f.err = img, err
	close(f.ch)
	return img, err
}

// warm loads key from disk or runs the warmup fresh (persisting the
// image, best-effort, when a directory is configured).
func (s *Store) warm(cfg config.SystemConfig, m *trace.Materialized, key warmKey) ([]byte, error) {
	if img, ok := s.loadDisk(key); ok {
		s.diskHits.Inc()
		return img, nil
	}
	sys := core.NewSystem(cfg)
	sys.WarmupST(m.NewReplay(), key.Warmup)
	img, err := sys.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("sample: snapshot after warmup: %w", err)
	}
	s.built.Inc()
	s.storeDisk(key, img)
	return img, nil
}

// Flat binary encoding: a self-describing header binding the image to
// its key, the system snapshot image (which carries its own magic and
// checksum), and an FNV-1a checksum over everything before it.
//
//	magic   8B  "CATCHSP1" (format version folded into the magic)
//	config  8B  little-endian config fingerprint
//	seed    8B  little-endian uint64
//	warmup  8B  little-endian uint64
//	nameLen 2B  little-endian uint16, then nameLen bytes of name
//	imgLen  8B  little-endian uint64, then imgLen bytes of image
//	check   8B  FNV-1a over everything before this field
const snapMagic = "CATCHSP1"

// path maps a key to its on-disk file: a content address over the key
// itself, so the filename needs no escaping and collisions would need a
// SHA-256 collision.
//
//catch:keyfn
func (s *Store) path(key warmKey) (string, bool) {
	if s.dir == "" || len(key.Name) > 1<<16-1 {
		return "", false
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d\x00%d\x00%d",
		key.Name, key.Seed, key.Warmup, key.Fingerprint)))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".warm"), true
}

// loadDisk reads a persisted image. Any mismatch or corruption removes
// the file and reports a miss, so the caller re-warms and overwrites it
// with a fresh copy.
func (s *Store) loadDisk(key warmKey) ([]byte, bool) {
	p, ok := s.path(key)
	if !ok {
		return nil, false
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	img, err := decodeWarm(key, raw)
	if err != nil {
		s.badDisk.Inc()
		_ = os.Remove(p) // superseded by the fresh warmup below
		return nil, false
	}
	return img, true
}

// storeDisk persists an image via temp-file rename so readers never
// observe a half-written file. Failures are silent: the disk layer is
// an optimization, the in-memory image is the data.
func (s *Store) storeDisk(key warmKey, img []byte) {
	p, ok := s.path(key)
	if !ok {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, encodeWarm(key, img), 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, p); err != nil {
		_ = os.Remove(tmp) // best-effort cleanup of the temp file
	}
}

// encodeWarm renders the image in the flat binary layout.
func encodeWarm(key warmKey, img []byte) []byte {
	n := len(snapMagic) + 8*4 + 2 + len(key.Name) + 8 + len(img) + 8
	buf := make([]byte, 0, n)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, key.Fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, key.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key.Warmup))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key.Name)))
	buf = append(buf, key.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(img)))
	buf = append(buf, img...)
	return binary.LittleEndian.AppendUint64(buf, snap.Fnv1a(buf))
}

// decodeWarm parses and validates a persisted image against the key it
// was looked up under.
func decodeWarm(key warmKey, raw []byte) ([]byte, error) {
	hdr := len(snapMagic) + 8*3 + 2
	if len(raw) < hdr+8+8 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("sample: bad magic")
	}
	body, trailer := raw[:len(raw)-8], raw[len(raw)-8:]
	if snap.Fnv1a(body) != binary.LittleEndian.Uint64(trailer) {
		return nil, fmt.Errorf("sample: checksum mismatch")
	}
	off := len(snapMagic)
	fp := binary.LittleEndian.Uint64(raw[off:])
	seed := binary.LittleEndian.Uint64(raw[off+8:])
	warmup := binary.LittleEndian.Uint64(raw[off+16:])
	nameLen := int(binary.LittleEndian.Uint16(raw[off+24:]))
	off += 26
	if len(body) < off+nameLen+8 {
		return nil, fmt.Errorf("sample: truncated name")
	}
	name := string(raw[off : off+nameLen])
	off += nameLen
	if name != key.Name || fp != key.Fingerprint || seed != key.Seed || warmup != uint64(key.Warmup) {
		return nil, fmt.Errorf("sample: header (%s, %#x, %d, %d) does not match key (%s, %#x, %d, %d)",
			name, fp, seed, warmup, key.Name, key.Fingerprint, key.Seed, key.Warmup)
	}
	imgLen := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	if uint64(len(body)-off) != imgLen {
		return nil, fmt.Errorf("sample: image is %d bytes, header says %d", len(body)-off, imgLen)
	}
	return body[off:], nil
}
