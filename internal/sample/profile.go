package sample

import (
	"fmt"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/trace"
)

// FeatureDim is the length of one interval's feature vector.
const FeatureDim = 12

// Profile is a workload's measurement region described as per-interval
// feature vectors. The features are dimensionless rates drawn from the
// telemetry the simulator already maintains (no new hot-path state):
//
//	 0  CPI
//	 1  demand-load L1 miss fraction
//	 2  demand-load LLC-served fraction
//	 3  demand-load memory-served fraction
//	 4  fetch L1 miss fraction
//	 5  store miss fraction
//	 6  branch mispredicts per instruction
//	 7  code-stall cycles per cycle
//	 8  MSHR-stall cycles per cycle
//	 9  DRAM row-hit fraction
//	10  TACT timely-prefetch fraction (>80% latency saved)
//	11  criticality-recorded loads per instruction
type Profile struct {
	Workload string
	Interval int64
	Features [][]float64
}

// profileConfig is the single canonical microarchitecture every
// workload is profiled under, whatever configs the sweep itself spans:
// one profile (and one clustering) is then shared by every config of a
// grid, and the cluster choice can never skew a comparison between two
// configs — they simulate the same representative intervals. Full
// CATCH hardware is enabled so criticality and timeliness phases are
// visible to the feature vector.
func profileConfig() config.SystemConfig {
	cfg := config.WithCATCH(config.BaselineExclusive(), "sample-profile")
	cfg.Tact.EnableCode = true
	cfg.Tact.EnableCross = true
	cfg.Tact.EnableDeep = true
	cfg.Tact.EnableFeeder = true
	return cfg
}

// ProfileWorkload simulates m's measurement region once under the
// canonical profile config and describes each interval as a feature
// vector. m must hold warmup+insts instructions and interval must
// divide insts evenly.
func ProfileWorkload(m *trace.Materialized, insts, warmup, interval int64) (*Profile, error) {
	if interval <= 0 || insts <= 0 || insts%interval != 0 {
		return nil, fmt.Errorf("sample: interval %d must evenly divide insts %d", interval, insts)
	}
	n := int(insts / interval)
	sys := core.NewSystem(profileConfig())
	sys.WarmupST(m.NewReplay(), warmup)

	backing := make([]float64, n*FeatureDim)
	features := make([][]float64, n)
	for i := 0; i < n; i++ {
		base := sys.CaptureCumulative()
		win := sys.BeginMeasure()
		sys.StepST(interval)
		r := sys.EndMeasureDelta(win, base)
		v := backing[i*FeatureDim : (i+1)*FeatureDim : (i+1)*FeatureDim]
		featurize(&r, v)
		features[i] = v
	}
	return &Profile{Workload: m.Name(), Interval: interval, Features: features}, nil
}

// featurize fills v with the interval result's feature vector.
func featurize(r *core.Result, v []float64) {
	cycles := float64(r.Cycles)
	insts := float64(r.Insts)
	v[0] = ratio(cycles, insts)
	v[1] = 1 - ratio(float64(r.Hier.LoadL1), float64(r.Hier.Loads))
	v[2] = ratio(float64(r.Hier.LoadLLC), float64(r.Hier.Loads))
	v[3] = ratio(float64(r.Hier.LoadMem), float64(r.Hier.Loads))
	v[4] = 1 - ratio(float64(r.Hier.FetchL1), float64(r.Hier.Fetches))
	v[5] = ratio(float64(r.Hier.StoreMiss), float64(r.Hier.Stores))
	v[6] = ratio(float64(r.Mispredicts), insts)
	v[7] = ratio(float64(r.CodeStalls), cycles)
	v[8] = ratio(float64(r.Hier.MSHRStallCycles), cycles)
	rows := float64(r.DRAM.RowHits + r.DRAM.RowMisses + r.DRAM.RowConflicts)
	v[9] = ratio(float64(r.DRAM.RowHits), rows)
	if h := r.Hier.TactTimeliness; h != nil && h.Total > 0 && len(h.Counts) > 0 {
		v[10] = float64(h.Counts[len(h.Counts)-1]) / float64(h.Total)
	}
	v[11] = ratio(float64(r.Crit.RecordedLoads), insts)
}

// ratio is a zero-guarded division.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
