package sample

import (
	"testing"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/trace"
	"catch/internal/workloads"
)

// TestRestoredStepSteadyStateAllocs guards the sampling hot path: a
// system restored from a warm snapshot and attached to a trace replay
// must step gap and measurement instructions without heap allocations,
// exactly like the RunST kernel it replaces. (The per-window
// EndMeasureDelta bookkeeping may allocate; the instruction stepping in
// between must not.)
func TestRestoredStepSteadyStateAllocs(t *testing.T) {
	cfg := config.WithCATCH(config.BaselineExclusive(), "catch-alloc")
	w, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("workload mcf")
	}
	const warmup, insts = 20_000, 40_000
	m, err := trace.NewStore("").Materialize(&w, warmup+insts)
	if err != nil {
		t.Fatal(err)
	}
	img, err := NewStore("").Warm(cfg, &w, m, warmup)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(cfg)
	if err := sys.Restore(img); err != nil {
		t.Fatal(err)
	}
	rep := m.NewReplay()
	rep.SeekTo(warmup)
	sys.AttachST(rep)
	// Settle the restored system: replay-side buffers and any
	// structures the snapshot rebuilt lazily reach steady footprint.
	sys.StepST(5_000)
	if allocs := testing.AllocsPerRun(5, func() { sys.StepST(2_000) }); allocs != 0 {
		t.Errorf("restored steady-state StepST: %v allocs per 2k-inst batch, want 0", allocs)
	}
}
