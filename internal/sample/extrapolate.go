package sample

import (
	"math"

	"catch/internal/cache"
	"catch/internal/core"
	"catch/internal/criticality"
	"catch/internal/interconnect"
	"catch/internal/memory"
	"catch/internal/stats"
	"catch/internal/tact"
)

// extrapolate stratifies the measurement region by cluster: every
// additive counter of the full run is estimated as Σ_c n_c·X_c, where
// X_c is the counter measured over cluster c's representative interval
// and n_c the cluster size. Identity fields and instantaneous gauges
// (workload, config, critical-PC count) come from the representative
// of the largest cluster; the run-cumulative TACT/criticality blocks
// are re-based on the warm-state counters so the estimate matches the
// full run's "warmup plus measurement" accounting.
func extrapolate(perCluster []core.Result, cl Clustering, warmBase core.CumulativeBase) core.Result {
	largest := 0
	for c := range cl.Sizes {
		if cl.Sizes[c] > cl.Sizes[largest] {
			largest = c
		}
	}
	est := perCluster[largest]
	zeroAdditive(&est)
	for c := range perCluster {
		addScaled(&est, &perCluster[c], uint64(cl.Sizes[c]))
	}
	est.Crit = addCrit(warmBase.Crit, est.Crit)
	est.Tact = addTact(warmBase.Tact, est.Tact)
	est.CodePfLearned += warmBase.CodePfLearned
	est.CodePfIssued += warmBase.CodePfIssued
	if est.Cycles > 0 {
		est.IPC = float64(est.Insts) / float64(est.Cycles)
	}
	return est
}

// zeroAdditive clears every counter that extrapolation accumulates,
// keeping identity fields, HasL2 and the instantaneous CriticalPCs
// gauge.
func zeroAdditive(r *core.Result) {
	hist := r.Hier.TactTimeliness
	r.Insts, r.Cycles, r.IPC = 0, 0, 0
	r.Mispredicts, r.CodeStalls = 0, 0
	r.Hier = cache.HierStats{}
	if hist != nil {
		r.Hier.TactTimeliness = stats.NewHistogram(hist.Bounds...)
	}
	r.L1D, r.L1I, r.L2, r.LLC = cache.Stats{}, cache.Stats{}, cache.Stats{}, cache.Stats{}
	r.DRAM = memory.Stats{}
	r.Ring = interconnect.Stats{}
	r.Crit = r.Crit.Delta(r.Crit)
	r.Tact = r.Tact.Delta(r.Tact)
	r.ConvertedLoads, r.CodePfLearned, r.CodePfIssued = 0, 0, 0
}

// addScaled folds src into dst with weight w on every additive field.
func addScaled(dst *core.Result, src *core.Result, w uint64) {
	iw := int64(w)
	dst.Insts += src.Insts * iw
	dst.Cycles += src.Cycles * iw
	dst.Mispredicts += src.Mispredicts * iw
	dst.CodeStalls += src.CodeStalls * iw

	addScaledHier(&dst.Hier, &src.Hier, w)
	addScaledCache(&dst.L1D, &src.L1D, w)
	addScaledCache(&dst.L1I, &src.L1I, w)
	addScaledCache(&dst.L2, &src.L2, w)
	addScaledCache(&dst.LLC, &src.LLC, w)

	dst.DRAM.Reads += src.DRAM.Reads * w
	dst.DRAM.Writes += src.DRAM.Writes * w
	dst.DRAM.RowHits += src.DRAM.RowHits * w
	dst.DRAM.RowMisses += src.DRAM.RowMisses * w
	dst.DRAM.RowConflicts += src.DRAM.RowConflicts * w
	dst.DRAM.WriteDrains += src.DRAM.WriteDrains * w
	dst.DRAM.TotalReadLat += src.DRAM.TotalReadLat * w
	dst.DRAM.BusyStallCycles += src.DRAM.BusyStallCycles * w
	dst.DRAM.ChannelBusyConflicts += src.DRAM.ChannelBusyConflicts * w

	for i := range dst.Ring.Messages {
		dst.Ring.Messages[i] += src.Ring.Messages[i] * w
	}
	dst.Ring.Flits += src.Ring.Flits * w
	dst.Ring.HopFlits += src.Ring.HopFlits * w

	dst.Crit.Retired += src.Crit.Retired * w
	dst.Crit.Walks += src.Crit.Walks * w
	dst.Crit.PathNodes += src.Crit.PathNodes * w
	dst.Crit.PathLoads += src.Crit.PathLoads * w
	dst.Crit.RecordedLoads += src.Crit.RecordedLoads * w
	dst.Crit.Overflows += src.Crit.Overflows * w

	dst.Tact.TargetsAllocated += src.Tact.TargetsAllocated * w
	dst.Tact.Dist1Issued += src.Tact.Dist1Issued * w
	dst.Tact.DeepIssued += src.Tact.DeepIssued * w
	dst.Tact.CrossIssued += src.Tact.CrossIssued * w
	dst.Tact.FeederIssued += src.Tact.FeederIssued * w
	dst.Tact.CodeIssued += src.Tact.CodeIssued * w
	dst.Tact.CrossTrained += src.Tact.CrossTrained * w
	dst.Tact.FeederTrained += src.Tact.FeederTrained * w
	dst.Tact.CrossGaveUp += src.Tact.CrossGaveUp * w

	dst.ConvertedLoads += src.ConvertedLoads * w
	dst.CodePfLearned += src.CodePfLearned * w
	dst.CodePfIssued += src.CodePfIssued * w
}

func addScaledCache(dst, src *cache.Stats, w uint64) {
	dst.Lookups += src.Lookups * w
	dst.Hits += src.Hits * w
	dst.Misses += src.Misses * w
	dst.Fills += src.Fills * w
	dst.Evictions += src.Evictions * w
	dst.DirtyEvictions += src.DirtyEvictions * w
	dst.Invalidations += src.Invalidations * w
	dst.Writes += src.Writes * w
	dst.PrefetchFills += src.PrefetchFills * w
	dst.PrefetchUsed += src.PrefetchUsed * w
	dst.PrefetchEvictedUnused += src.PrefetchEvictedUnused * w
}

func addScaledHier(dst, src *cache.HierStats, w uint64) {
	dst.Loads += src.Loads * w
	dst.LoadL1 += src.LoadL1 * w
	dst.LoadL2 += src.LoadL2 * w
	dst.LoadLLC += src.LoadLLC * w
	dst.LoadMem += src.LoadMem * w
	dst.Stores += src.Stores * w
	dst.StoreL1Hit += src.StoreL1Hit * w
	dst.StoreMiss += src.StoreMiss * w
	dst.Fetches += src.Fetches * w
	dst.FetchL1 += src.FetchL1 * w
	dst.FetchL2 += src.FetchL2 * w
	dst.FetchLLC += src.FetchLLC * w
	dst.FetchMem += src.FetchMem * w
	dst.WBToL2 += src.WBToL2 * w
	dst.WBToLLC += src.WBToLLC * w
	dst.WBToMem += src.WBToMem * w
	dst.TactIssued += src.TactIssued * w
	dst.TactFilledL2 += src.TactFilledL2 * w
	dst.TactFilledLLC += src.TactFilledLLC * w
	dst.TactDropPresent += src.TactDropPresent * w
	dst.TactDropMiss += src.TactDropMiss * w
	dst.TactUsed += src.TactUsed * w
	dst.CodePfIssued += src.CodePfIssued * w
	dst.CodePfFilled += src.CodePfFilled * w
	dst.StridePfIssued += src.StridePfIssued * w
	dst.StreamPfIssued += src.StreamPfIssued * w
	dst.OraclePromotions += src.OraclePromotions * w
	dst.MSHRStallCycles += src.MSHRStallCycles * w
	if sh := src.TactTimeliness; sh != nil && dst.TactTimeliness != nil &&
		len(sh.Counts) == len(dst.TactTimeliness.Counts) {
		for i := range sh.Counts {
			dst.TactTimeliness.Counts[i] += sh.Counts[i] * w
		}
		dst.TactTimeliness.Total += sh.Total * w
	}
}

// addCrit folds the warm-state base back onto an extrapolated delta.
func addCrit(base, d criticality.Stats) criticality.Stats {
	return criticality.Stats{
		Retired:       base.Retired + d.Retired,
		Walks:         base.Walks + d.Walks,
		PathNodes:     base.PathNodes + d.PathNodes,
		PathLoads:     base.PathLoads + d.PathLoads,
		RecordedLoads: base.RecordedLoads + d.RecordedLoads,
		Overflows:     base.Overflows + d.Overflows,
	}
}

// addTact folds the warm-state base back onto an extrapolated delta.
func addTact(base, d tact.Stats) tact.Stats {
	return tact.Stats{
		TargetsAllocated: base.TargetsAllocated + d.TargetsAllocated,
		Dist1Issued:      base.Dist1Issued + d.Dist1Issued,
		DeepIssued:       base.DeepIssued + d.DeepIssued,
		CrossIssued:      base.CrossIssued + d.CrossIssued,
		FeederIssued:     base.FeederIssued + d.FeederIssued,
		CodeIssued:       base.CodeIssued + d.CodeIssued,
		CrossTrained:     base.CrossTrained + d.CrossTrained,
		FeederTrained:    base.FeederTrained + d.FeederTrained,
		CrossGaveUp:      base.CrossGaveUp + d.CrossGaveUp,
	}
}

// relErrors derives one-standard-error bounds for the headline metrics
// from the profiling pass: with one measured representative per
// cluster and the profile's within-cluster variance as the dispersion
// proxy, the stratified estimator's variance for a per-interval mean
// metric is Σ (n_c·σ_c)² around a total of Σ n_c·μ_c.
func relErrors(prof *Profile, cl Clustering) (ipc, l1dMiss, memLoads float64) {
	ipc = stratifiedRelErr(prof, cl, 0)
	l1dMiss = stratifiedRelErr(prof, cl, 1)
	memLoads = stratifiedRelErr(prof, cl, 3)
	return
}

// stratifiedRelErr computes the relative standard error of the
// stratified total of one feature dimension.
func stratifiedRelErr(prof *Profile, cl Clustering, dim int) float64 {
	k := len(cl.Sizes)
	mean := make([]float64, k)
	for i, c := range cl.Assign {
		mean[c] += prof.Features[i][dim]
	}
	for c := 0; c < k; c++ {
		mean[c] /= float64(cl.Sizes[c])
	}
	var total, varSum float64
	vari := make([]float64, k)
	for i, c := range cl.Assign {
		d := prof.Features[i][dim] - mean[c]
		vari[c] += d * d
	}
	for c := 0; c < k; c++ {
		n := float64(cl.Sizes[c])
		total += n * mean[c]
		// (n_c·σ_c)² with σ_c² = vari/n the population variance.
		varSum += n * vari[c]
	}
	if total == 0 {
		return 0
	}
	return math.Sqrt(varSum) / math.Abs(total)
}
