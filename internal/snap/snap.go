// Package snap is the little-endian binary codec underneath the
// microarchitectural snapshot format: an append-only Writer, an
// error-latching Reader, and the FNV-1a checksum shared with the trace
// store's on-disk format. Every simulator package that owns warm state
// serializes itself with these primitives so the snapshot byte layout
// is a pure function of the state — no reflection, no maps, no
// per-build variation.
package snap

import (
	"errors"
	"fmt"
)

// ErrShort reports a read past the end of the buffer.
var ErrShort = errors.New("snap: truncated input")

// Writer accumulates a snapshot image. The zero value is ready to use.
type Writer struct {
	Buf []byte
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.Buf = append(w.Buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) {
	w.Buf = append(w.Buf, byte(v), byte(v>>8))
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.Buf = append(w.Buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.Buf = append(w.Buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I32 appends an int32 (two's complement).
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as 64 bits so the layout does not depend on the
// platform word size.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// String appends a length-prefixed string (uint16 length).
func (w *Writer) String(s string) {
	if len(s) > 1<<16-1 {
		s = s[:1<<16-1]
	}
	w.U16(uint16(len(s)))
	w.Buf = append(w.Buf, s...)
}

// Raw appends bytes verbatim (no length prefix).
func (w *Writer) Raw(b []byte) { w.Buf = append(w.Buf, b...) }

// Reader decodes a snapshot image. The first decode past the end
// latches ErrShort and every subsequent read returns zero values, so
// codecs can decode straight-line and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the latched decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Fail latches err (first caller wins) so codecs can surface their own
// structural-mismatch errors through the same channel.
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf)-r.off < n {
		r.err = ErrShort
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool decodes a one-byte bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 decodes a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I32 decodes an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 decodes an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int decodes an int stored as 64 bits.
func (r *Reader) Int() int { return int(r.I64()) }

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Expect decodes a uint64 and fails the reader unless it equals want.
// It is the structural guard every codec opens with: a snapshot built
// from a different geometry fails loudly instead of half-restoring.
func (r *Reader) Expect(want uint64, what string) {
	got := r.U64()
	if r.err == nil && got != want {
		r.err = fmt.Errorf("snap: %s mismatch: snapshot has %d, live state has %d", what, got, want)
	}
}

// Fnv1a returns the 64-bit FNV-1a hash of b — the same integrity
// checksum the trace store trails its records with.
func Fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
