package core

import (
	"testing"

	"catch/internal/config"
	"catch/internal/cpu"
	"catch/internal/prefetch"
	"catch/internal/workloads"
)

// TestBeginMeasureZeroesAllCounters pins the warmup-boundary reset the
// reset-coverage analyzer proves complete: every per-core counter —
// including the prefetcher and gshare stats that historically leaked
// warmup events into the measurement window — must be zero immediately
// after BeginMeasure, and must have been nonzero before it (a reset of
// an idle counter proves nothing).
func TestBeginMeasureZeroesAllCounters(t *testing.T) {
	cfg := config.BaselineExclusive()
	cfg.GsharePredictorBits = 12
	w, ok := workloads.ByName("libquantum")
	if !ok {
		t.Fatal("unknown workload libquantum")
	}
	sys := NewSystem(cfg)
	sys.WarmupST(w.NewGen(), testWarmup)
	c := sys.Sims[0]

	if c.CPU.CoreStats == (cpu.CoreStats{}) {
		t.Fatal("warmup left core counters idle; test exercises nothing")
	}
	g, ok := c.CPU.BP.(*cpu.Gshare)
	if !ok {
		t.Fatalf("gshare predictor not installed: %T", c.CPU.BP)
	}
	if g.BPStats == (cpu.BPStats{}) {
		t.Fatal("warmup left gshare counters idle; test exercises nothing")
	}
	if c.stride == nil || c.stride.Stats == (prefetch.StrideStats{}) {
		t.Fatal("warmup left stride prefetcher idle; test exercises nothing")
	}
	if c.stream == nil || c.stream.Stats == (prefetch.StreamStats{}) {
		t.Fatal("warmup left stream prefetcher idle; test exercises nothing")
	}

	sys.BeginMeasure()

	if c.CPU.CoreStats != (cpu.CoreStats{}) {
		t.Errorf("core counters survived the boundary reset: %+v", c.CPU.CoreStats)
	}
	if g.BPStats != (cpu.BPStats{}) {
		t.Errorf("gshare counters survived the boundary reset: %+v", g.BPStats)
	}
	if c.stride.Stats != (prefetch.StrideStats{}) {
		t.Errorf("stride prefetcher counters survived the boundary reset: %+v", c.stride.Stats)
	}
	if c.stream.Stats != (prefetch.StreamStats{}) {
		t.Errorf("stream prefetcher counters survived the boundary reset: %+v", c.stream.Stats)
	}
	if c.convDone != 0 {
		t.Errorf("convDone survived the boundary reset: %d", c.convDone)
	}
}

// TestBoundaryResetKeepsLearnedState guards the other half of the
// warmup-boundary contract: the reset zeroes counters, not learned
// state. A measurement window after a warmed-up reset must predict
// strides again immediately — if the reset wiped the stride table along
// with its stats, the first post-reset predictions would vanish.
func TestBoundaryResetKeepsLearnedState(t *testing.T) {
	cfg := config.BaselineExclusive()
	w, ok := workloads.ByName("libquantum")
	if !ok {
		t.Fatal("unknown workload libquantum")
	}
	sys := NewSystem(cfg)
	sys.WarmupST(w.NewGen(), testWarmup)
	sys.BeginMeasure()
	sys.StepST(2_000)
	c := sys.Sims[0]
	if c.stride.Stats.Predictions == 0 {
		t.Fatal("stride table lost its learned state across the boundary reset")
	}
}
