package core

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/config"
	"catch/internal/stats"
	"catch/internal/workloads"
)

// These tests validate that the synthetic workload suite lands in the
// microarchitectural regimes the paper's Table II categories were
// chosen for — the load-hit structure, front-end pressure, and
// criticality concentration that the whole evaluation depends on.

func runAllQuick(t *testing.T, cfg config.SystemConfig, n int) []Result {
	t.Helper()
	wls := workloads.StudyList(n)
	out := make([]Result, 0, len(wls))
	for _, w := range wls {
		sys := NewSystem(cfg)
		out = append(out, sys.RunST(w.NewGen(), 30_000, 20_000))
	}
	return out
}

func TestAverageL1HitRateInPaperRegime(t *testing.T) {
	// Paper §III-A: "we observed an average 85% L1 hit rate on our
	// study list". Accept a generous band around it.
	rs := runAllQuick(t, config.BaselineExclusive(), 24)
	var hr []float64
	for i := range rs {
		hr = append(hr, rs[i].L1LoadHitRate())
	}
	avg := stats.Mean(hr)
	if avg < 0.70 || avg > 0.97 {
		t.Fatalf("average L1 load hit rate %.2f outside the paper's regime (~0.85)", avg)
	}
}

func TestServerWorkloadsHaveFrontEndPressure(t *testing.T) {
	// Server category: large code footprints must produce L1I misses
	// in the baseline (the paper's motivation for L2 code benefits).
	for _, name := range []string{"tpcc", "oracle-db", "specjbb"} {
		r := runWorkload(t, name, config.BaselineExclusive())
		miss := r.Hier.Fetches - r.Hier.FetchL1
		if miss == 0 {
			t.Fatalf("%s: no code L1 misses", name)
		}
	}
}

func TestStreamWorkloadsAreMemoryBound(t *testing.T) {
	for _, name := range []string{"libquantum", "stream-triad", "lbm"} {
		r := runWorkload(t, name, config.BaselineExclusive())
		if r.DRAM.Reads == 0 {
			t.Fatalf("%s: no DRAM traffic", name)
		}
	}
}

func TestChaseWorkloadsSerializeLoads(t *testing.T) {
	// Pointer-chase workloads expose the latency of the level their
	// list lives at: bfs's chase set sits beyond the L2, so extra LLC
	// latency must visibly slow it, unlike an L1-resident compute code.
	base := runWorkload(t, "bfs", config.BaselineExclusive())
	slow := runWorkload(t, "bfs",
		config.WithLatencyDelta(config.BaselineExclusive(), cache.HitLLC, 12, "llc+12"))
	if slow.IPC >= base.IPC*0.995 {
		t.Fatalf("chase workload insensitive to LLC latency: %.3f vs %.3f", slow.IPC, base.IPC)
	}
	cBase := runWorkload(t, "gamess", config.BaselineExclusive())
	cSlow := runWorkload(t, "gamess",
		config.WithLatencyDelta(config.BaselineExclusive(), cache.HitLLC, 12, "llc+12"))
	if cSlow.IPC < cBase.IPC*0.98 {
		t.Fatalf("L1-resident compute workload too LLC-sensitive: %.3f vs %.3f", cSlow.IPC, cBase.IPC)
	}
}

func TestCriticalityConcentration(t *testing.T) {
	// The premise of Fig 5: a small number of PCs carries the
	// criticality. The detector table must not be thrashing on typical
	// workloads (povray is the deliberate exception).
	cfg := config.WithCATCH(config.BaselineExclusive(), "catch")
	for _, name := range []string{"hmmer", "mcf", "xalancbmk"} {
		r := runWorkload(t, name, cfg)
		if r.CriticalPCs == 0 {
			t.Fatalf("%s: no critical PCs found", name)
		}
		if r.CriticalPCs > 32 {
			t.Fatalf("%s: critical PCs exceed the table (%d)", name, r.CriticalPCs)
		}
	}
}

func TestCategoriesDifferInBehaviour(t *testing.T) {
	// The five categories must not collapse into one behaviour: their
	// mean L1 hit rates should span a visible range.
	rs := runAllQuick(t, config.BaselineExclusive(), 30)
	byCat := map[string][]float64{}
	for i := range rs {
		byCat[rs[i].Category] = append(byCat[rs[i].Category], rs[i].L1LoadHitRate())
	}
	min, max := 1.0, 0.0
	for _, v := range byCat {
		m := stats.Mean(v)
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if max-min < 0.02 {
		t.Fatalf("categories indistinguishable: L1 hit-rate spread %.3f", max-min)
	}
}

func TestPrewarmRaisesOnDieHits(t *testing.T) {
	// Prewarming must move first-touch misses on die: compare a run
	// with prewarm (normal) against cold caches by measuring memory
	// loads early in a run for a capacity workload.
	r := runWorkload(t, "sphinx3", config.BaselineExclusive())
	memFrac := float64(r.Hier.LoadMem) / float64(r.Hier.Loads)
	if memFrac > 0.5 {
		t.Fatalf("sphinx3 memory-load fraction %.2f despite prewarm", memFrac)
	}
}
