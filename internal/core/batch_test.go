package core

import (
	"reflect"
	"testing"

	"catch/internal/cache"
	"catch/internal/config"
	"catch/internal/trace"
	"catch/internal/workloads"
)

// batchTestConfigs spans the model variants whose state the lock-step
// kernel must keep private: the plain exclusive baseline, a latency
// variant, full CATCH (criticality detector + TACT, which exercises the
// replayed ValueAt path), and a gshare config (whose predictor rewrites
// Inst.Mispred and therefore must not touch the shared trace).
func batchTestConfigs() []config.SystemConfig {
	base := config.BaselineExclusive()
	gshare := config.BaselineExclusive()
	gshare.Name = "baseline-excl+gshare"
	gshare.GsharePredictorBits = 12
	return []config.SystemConfig{
		base,
		config.WithLatencyDelta(base, cache.HitLLC, 6, "baseline-excl+llc6"),
		config.WithCATCH(config.NoL2(base, 6656<<10, 13, "noL2"), "catch"),
		gshare,
	}
}

// TestRunBatchMatchesRunST is the batch kernel's correctness anchor:
// for every config in the batch, the result must be deeply equal to a
// scalar RunST of the same workload on a fresh system — byte-identical
// results, not merely close ones. The budget is deliberately not a
// multiple of the lock-step chunk so the partial-chunk edges and the
// mid-chunk warmup boundary are exercised.
func TestRunBatchMatchesRunST(t *testing.T) {
	const insts, warmup = 7_500, 3_300
	w, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("workload mcf")
	}
	m, err := trace.NewStore("").Materialize(&w, insts+warmup)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := batchTestConfigs()
	batch, err := RunBatch(m, cfgs, insts, warmup)
	if err != nil {
		t.Fatal(err)
	}
	for k, cfg := range cfgs {
		scalar := NewSystem(cfg).RunST(w.NewGen(), insts, warmup)
		if !reflect.DeepEqual(batch[k], scalar) {
			t.Errorf("config %s: batch result differs from scalar RunST\nbatch:  %+v\nscalar: %+v",
				cfg.Name, batch[k], scalar)
		}
	}
}

// TestRunBatchZeroWarmup covers the degenerate warmup=0 boundary.
func TestRunBatchZeroWarmup(t *testing.T) {
	const insts = 4_000
	w, _ := workloads.ByName("hmmer")
	m, err := trace.NewStore("").Materialize(&w, insts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.BaselineExclusive()
	batch, err := RunBatch(m, []config.SystemConfig{cfg}, insts, 0)
	if err != nil {
		t.Fatal(err)
	}
	scalar := NewSystem(cfg).RunST(w.NewGen(), insts, 0)
	if !reflect.DeepEqual(batch[0], scalar) {
		t.Errorf("warmup=0: batch result differs from scalar RunST")
	}
}

// TestRunBatchErrors covers the argument guards.
func TestRunBatchErrors(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	m, err := trace.NewStore("").Materialize(&w, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []config.SystemConfig{config.BaselineExclusive()}
	if _, err := RunBatch(m, cfgs, 0, 0); err == nil {
		t.Error("insts=0 accepted, want error")
	}
	if _, err := RunBatch(m, cfgs, 100, -1); err == nil {
		t.Error("negative warmup accepted, want error")
	}
	if _, err := RunBatch(m, cfgs, 900, 200); err == nil {
		t.Error("budget beyond the recording accepted, want error")
	}
	if rs, err := RunBatch(m, nil, 500, 100); err != nil || len(rs) != 0 {
		t.Errorf("empty batch: got (%v, %v), want empty results", rs, err)
	}
}

// TestBatchStepAllocs proves the lock-step inner loop allocates nothing
// in steady state, with and without a branch predictor (the predictor
// path steps a private copy of each record).
func TestBatchStepAllocs(t *testing.T) {
	const warm = 8_192
	w, _ := workloads.ByName("hmmer")
	m, err := trace.NewStore("").Materialize(&w, warm+batchChunk)
	if err != nil {
		t.Fatal(err)
	}
	buf := m.Insts()
	gshare := config.BaselineExclusive()
	gshare.GsharePredictorBits = 12
	for _, cfg := range []config.SystemConfig{config.BaselineExclusive(), gshare} {
		c := NewSystem(cfg).Sims[0]
		c.SetWorkload(m.NewReplay())
		stepChunk(c, buf[:warm]) // reach steady state first
		chunk := buf[warm:]
		allocs := testing.AllocsPerRun(50, func() { stepChunk(c, chunk) })
		if allocs != 0 {
			t.Errorf("%s (BP=%v): stepChunk allocates %.1f times per chunk, want 0",
				cfg.Name, c.CPU.BP != nil, allocs)
		}
	}
}
