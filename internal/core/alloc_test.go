package core

import (
	"testing"

	"catch/internal/config"
	"catch/internal/telemetry"
	"catch/internal/trace"
	"catch/internal/workloads"
)

// stepN drives n instructions through core 0 of sys, exactly as the
// RunST inner loop does.
func stepN(sys *System, gen trace.Generator, in *trace.Inst, n int) {
	c := sys.Sims[0]
	for i := 0; i < n; i++ {
		gen.Next(in)
		c.CPU.Step(in)
	}
}

// steadyStateAllocs warms a system up on a workload, then measures heap
// allocations across further simulation batches. A non-nil tracer is
// attached before warmup (the telemetry instrumentation must keep the
// kernel allocation-free whether tracing is off or on).
func steadyStateAllocs(t *testing.T, cfg config.SystemConfig, workload string, tr *telemetry.Tracer) float64 {
	t.Helper()
	w, ok := workloads.ByName(workload)
	if !ok {
		t.Fatalf("workload %s", workload)
	}
	sys := NewSystem(cfg)
	if tr != nil {
		sys.AttachTracer(tr)
	}
	gen := w.NewGen()
	sys.Sims[0].SetWorkload(gen)
	var in trace.Inst
	// Warm up long enough for every learned structure (detector buffer,
	// TACT tables, MSHRs, stream trackers) to reach its steady footprint.
	stepN(sys, gen, &in, 60_000)
	return testing.AllocsPerRun(5, func() {
		stepN(sys, gen, &in, 10_000)
	})
}

// TestRunSTSteadyStateAllocsBaseline guards the headline property of
// the allocation-free kernel: once warm, simulating an instruction on
// the baseline configuration performs zero heap allocations.
func TestRunSTSteadyStateAllocsBaseline(t *testing.T) {
	if allocs := steadyStateAllocs(t, config.BaselineExclusive(), "hmmer", nil); allocs != 0 {
		t.Errorf("baseline steady-state RunST: %v allocs per 10k-inst batch, want 0", allocs)
	}
}

// TestRunSTSteadyStateAllocsCATCH is the same guard with the
// criticality detector and all TACT prefetchers active.
func TestRunSTSteadyStateAllocsCATCH(t *testing.T) {
	cfg := config.WithCATCH(config.BaselineExclusive(), "catch")
	if allocs := steadyStateAllocs(t, cfg, "hmmer", nil); allocs != 0 {
		t.Errorf("CATCH steady-state RunST: %v allocs per 10k-inst batch, want 0", allocs)
	}
}

// TestRunSTSteadyStateAllocsWithDisabledTracer guards the one-branch
// promise: a tracer attached to every component but switched off must
// leave the kernel allocation-free.
func TestRunSTSteadyStateAllocsWithDisabledTracer(t *testing.T) {
	cfg := config.WithCATCH(config.BaselineExclusive(), "catch")
	tr := telemetry.NewTracer(telemetry.TracerConfig{BufferEvents: 1 << 10})
	tr.SetEnabled(false)
	if allocs := steadyStateAllocs(t, cfg, "hmmer", tr); allocs != 0 {
		t.Errorf("disabled-tracer steady-state RunST: %v allocs per 10k-inst batch, want 0", allocs)
	}
	if tr.Len() != 0 {
		t.Errorf("disabled tracer recorded %d events, want 0", tr.Len())
	}
}

// TestRunSTSteadyStateAllocsWithEnabledTracer is the stronger claim:
// even recording into its ring, the instrumented kernel allocates
// nothing in steady state.
func TestRunSTSteadyStateAllocsWithEnabledTracer(t *testing.T) {
	cfg := config.WithCATCH(config.BaselineExclusive(), "catch")
	tr := telemetry.NewTracer(telemetry.TracerConfig{BufferEvents: 1 << 12, SampleEvery: 8})
	if allocs := steadyStateAllocs(t, cfg, "hmmer", tr); allocs != 0 {
		t.Errorf("enabled-tracer steady-state RunST: %v allocs per 10k-inst batch, want 0", allocs)
	}
	if tr.Len() == 0 {
		t.Error("enabled tracer recorded no events")
	}
}

// TestRunSTSteadyStateAllocsAcrossWorkloads sweeps a few archetypes so
// the guard is not an artifact of one access pattern.
func TestRunSTSteadyStateAllocsAcrossWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := config.WithCATCH(config.BaselineExclusive(), "catch")
	for _, w := range []string{"mcf", "omnetpp", "xalancbmk"} {
		if _, ok := workloads.ByName(w); !ok {
			continue
		}
		if allocs := steadyStateAllocs(t, cfg, w, nil); allocs != 0 {
			t.Errorf("%s: %v allocs per 10k-inst batch, want 0", w, allocs)
		}
	}
}
