package core

import (
	"encoding/json"
	"fmt"

	"catch/internal/config"
	"catch/internal/cpu"
	"catch/internal/criticality"
	"catch/internal/snap"
)

// A system snapshot is the versioned binary image of all warm
// microarchitectural state: cache tags/LRU/policy state, MSHR
// occupancy, pipeline rings and scoreboard, branch predictor, TACT
// tables, criticality detector, baseline prefetchers, DRAM bank state
// and every statistics block. The format is:
//
//	magic    8B  "CATCHSS1" (format version folded into the magic)
//	config   8B  FNV-1a over the canonical JSON of the system config
//	body         per-subsystem snap codec output
//	check    8B  FNV-1a over magic+config+body
//
// A snapshot restores only into a System built from the same
// configuration: the config fingerprint and the per-codec geometry
// guards fail loudly on any mismatch, and the trailing checksum turns
// file corruption into a detectable error instead of silent state
// skew.

// SnapshotMagic identifies the snapshot format version.
const SnapshotMagic = "CATCHSS1"

// Criticality-source tags in the snapshot stream.
const (
	critNone = iota
	critDetector
	critHeuristic
)

// ConfigFingerprint hashes a system configuration's JSON form; it keys
// snapshots to the exact microarchitecture they froze.
//
//catch:keyfn
func ConfigFingerprint(cfg *config.SystemConfig) (uint64, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return 0, fmt.Errorf("snapshot: marshal config: %w", err)
	}
	return snap.Fnv1a(raw), nil
}

// ConfigFingerprint hashes the system's own configuration.
func (s *System) ConfigFingerprint() (uint64, error) {
	return ConfigFingerprint(&s.Cfg)
}

// Snapshot serializes the system's full mutable state.
func (s *System) Snapshot() ([]byte, error) {
	fp, err := s.ConfigFingerprint()
	if err != nil {
		return nil, err
	}
	w := &snap.Writer{}
	w.Raw([]byte(SnapshotMagic))
	w.U64(fp)
	w.U64(uint64(len(s.Sims)))
	s.LLC.SnapshotTo(w)
	s.Mem.SnapshotTo(w)
	s.Ring.SnapshotTo(w)
	for _, c := range s.Sims {
		if err := c.snapshotTo(w); err != nil {
			return nil, err
		}
	}
	w.U64(snap.Fnv1a(w.Buf))
	return w.Buf, nil
}

func (c *CoreSim) snapshotTo(w *snap.Writer) error {
	c.CPU.SnapshotTo(w)
	switch bp := c.CPU.BP.(type) {
	case nil:
		w.U8(0)
	case *cpu.Gshare:
		w.U8(1)
		bp.SnapshotTo(w)
	default:
		return fmt.Errorf("snapshot: unsupported branch predictor %T", bp)
	}
	c.Hier.SnapshotTo(w)
	c.Hier.L1I.SnapshotTo(w)
	c.Hier.L1D.SnapshotTo(w)
	if c.Hier.L2 != nil {
		c.Hier.L2.SnapshotTo(w)
	}
	switch crit := c.Crit.(type) {
	case nil:
		w.U8(critNone)
	case *criticality.Detector:
		w.U8(critDetector)
		crit.SnapshotTo(w)
	case *criticality.Heuristic:
		w.U8(critHeuristic)
		crit.SnapshotTo(w)
	default:
		return fmt.Errorf("snapshot: unsupported criticality source %T", crit)
	}
	if c.Tact != nil {
		c.Tact.SnapshotTo(w)
	}
	if c.stride != nil {
		c.stride.SnapshotTo(w)
	}
	if c.stream != nil {
		c.stream.SnapshotTo(w)
	}
	w.U64(c.lastLine)
	w.U64(c.convDone)
	w.I64(c.retired)
	return nil
}

// Restore loads a snapshot produced by Snapshot into this system,
// which must have been built from the same configuration. On any
// mismatch or corruption the system's state is undefined and the
// caller must discard it.
func (s *System) Restore(data []byte) error {
	n := len(data)
	if n < len(SnapshotMagic)+16 {
		return fmt.Errorf("snapshot: truncated image (%d bytes)", n)
	}
	if string(data[:len(SnapshotMagic)]) != SnapshotMagic {
		return fmt.Errorf("snapshot: bad magic %q", data[:len(SnapshotMagic)])
	}
	body, trailer := data[:n-8], data[n-8:]
	if got, want := snap.Fnv1a(body), snap.NewReader(trailer).U64(); got != want {
		return fmt.Errorf("snapshot: checksum mismatch (corrupt image)")
	}
	r := snap.NewReader(body[len(SnapshotMagic):])
	fp, err := s.ConfigFingerprint()
	if err != nil {
		return err
	}
	r.Expect(fp, "config fingerprint")
	r.Expect(uint64(len(s.Sims)), "core count")
	if err := s.LLC.RestoreFrom(r); err != nil {
		return err
	}
	if err := s.Mem.RestoreFrom(r); err != nil {
		return err
	}
	if err := s.Ring.RestoreFrom(r); err != nil {
		return err
	}
	for _, c := range s.Sims {
		if err := c.restoreFrom(r); err != nil {
			return err
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("snapshot: %d trailing bytes after restore", r.Remaining())
	}
	return nil
}

func (c *CoreSim) restoreFrom(r *snap.Reader) error {
	if err := c.CPU.RestoreFrom(r); err != nil {
		return err
	}
	bpTag := r.U8()
	switch bp := c.CPU.BP.(type) {
	case nil:
		if r.Err() == nil && bpTag != 0 {
			return fmt.Errorf("snapshot: image has a branch predictor, live core does not")
		}
	case *cpu.Gshare:
		if r.Err() == nil && bpTag != 1 {
			return fmt.Errorf("snapshot: image has no gshare predictor, live core does")
		}
		if err := bp.RestoreFrom(r); err != nil {
			return err
		}
	default:
		return fmt.Errorf("snapshot: unsupported branch predictor %T", bp)
	}
	if err := c.Hier.RestoreFrom(r); err != nil {
		return err
	}
	if err := c.Hier.L1I.RestoreFrom(r); err != nil {
		return err
	}
	if err := c.Hier.L1D.RestoreFrom(r); err != nil {
		return err
	}
	if c.Hier.L2 != nil {
		if err := c.Hier.L2.RestoreFrom(r); err != nil {
			return err
		}
	}
	critTag := r.U8()
	wantTag := uint8(critNone)
	switch c.Crit.(type) {
	case *criticality.Detector:
		wantTag = critDetector
	case *criticality.Heuristic:
		wantTag = critHeuristic
	case nil:
	default:
		return fmt.Errorf("snapshot: unsupported criticality source %T", c.Crit)
	}
	if r.Err() == nil && critTag != wantTag {
		return fmt.Errorf("snapshot: criticality source mismatch: image has tag %d, live core has %d", critTag, wantTag)
	}
	switch crit := c.Crit.(type) {
	case *criticality.Detector:
		if err := crit.RestoreFrom(r); err != nil {
			return err
		}
	case *criticality.Heuristic:
		if err := crit.RestoreFrom(r); err != nil {
			return err
		}
	}
	if c.Tact != nil {
		if err := c.Tact.RestoreFrom(r); err != nil {
			return err
		}
	}
	if c.stride != nil {
		if err := c.stride.RestoreFrom(r); err != nil {
			return err
		}
	}
	if c.stream != nil {
		if err := c.stream.RestoreFrom(r); err != nil {
			return err
		}
	}
	c.lastLine = r.U64()
	c.convDone = r.U64()
	c.retired = r.I64()
	return r.Err()
}
