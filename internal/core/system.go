package core

import (
	"catch/internal/cache"
	"catch/internal/config"
	"catch/internal/cpu"
	"catch/internal/criticality"
	"catch/internal/interconnect"
	"catch/internal/memory"
	"catch/internal/prefetch"
	"catch/internal/tact"
	"catch/internal/telemetry"
	"catch/internal/trace"
)

// System is one simulated chip: N cores with private caches sharing an
// LLC, a ring and main memory.
type System struct {
	Cfg  config.SystemConfig //catch:nosnap the snapshot's identity, not its state; guarded by the header fingerprint
	LLC  *cache.Cache
	Mem  *memory.DRAM
	Ring *interconnect.Ring
	Sims []*CoreSim
}

// CoreSim is one core plus its private hierarchy view and CATCH
// hardware.
type CoreSim struct {
	sys *System //catch:nosnap backpointer wiring
	ID  int     //catch:nosnap identity fixed at construction

	CPU  *cpu.Core
	Hier *cache.Hierarchy
	Crit criticality.Source
	Tact *tact.Prefetchers

	stride *prefetch.StridePrefetcher
	stream *prefetch.StreamPrefetcher

	gen       trace.Generator   //catch:nosnap the sampling driver repositions the trace source deterministically
	values    trace.ValueSource //catch:nosnap derived deterministically from the trace source
	streamBuf []uint64          //catch:nosnap per-step scratch, dead between instructions
	lastLine  uint64

	// batchIn is the lock-step kernel's scratch record for predictor
	// cores: Step's pointer argument escapes (it flows into the Ports
	// closures), so a stack local in stepChunk would heap-allocate once
	// per chunk. A field on the already-heap CoreSim does not.
	batchIn trace.Inst //catch:nosnap per-step scratch, dead between instructions

	convDone uint64
	retired  int64
}

// NewSystem builds a system from cfg.
func NewSystem(cfg config.SystemConfig) *System {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	s := &System{
		Cfg:  cfg,
		LLC:  cache.New(cache.Config{Name: "LLC", Size: cfg.LLCSize, Ways: cfg.LLCWays, HitLat: cfg.LLCLat}),
		Mem:  memory.New(cfg.DRAM),
		Ring: interconnect.New(cfg.RingStops, cfg.RingHopLat),
	}
	s.LLC.SetPolicy(cfg.LLCPolicy)
	for i := 0; i < cfg.Cores; i++ {
		s.Sims = append(s.Sims, newCoreSim(s, i))
	}
	// Inclusive back-invalidation reaches every core's private caches.
	backInval := func(addr uint64, now int64) {
		for _, c := range s.Sims {
			c.Hier.InvalidatePrivate(addr, now)
		}
	}
	for _, c := range s.Sims {
		c.Hier.BackInval = backInval
	}
	return s
}

func newCoreSim(s *System, id int) *CoreSim {
	cfg := s.Cfg
	c := &CoreSim{sys: s, ID: id}

	c.Hier = &cache.Hierarchy{
		L1I:       cache.New(cache.Config{Name: "L1I", Size: cfg.L1ISize, Ways: cfg.L1Ways, HitLat: cfg.L1Lat}),
		L1D:       cache.New(cache.Config{Name: "L1D", Size: cfg.L1DSize, Ways: cfg.L1Ways, HitLat: cfg.L1Lat}),
		LLC:       s.LLC,
		Mem:       s.Mem,
		Ring:      s.Ring,
		Inclusive: cfg.Inclusive,
		CoreID:    id,
		LLCStop:   cfg.RingStops/2 + id%2, // core and LLC slice stops
	}
	if cfg.HasL2 {
		c.Hier.L2 = cache.New(cache.Config{Name: "L2", Size: cfg.L2Size, Ways: cfg.L2Ways, HitLat: cfg.L2Lat})
	}
	c.Hier.SetMSHRs(cfg.MSHRs)

	if cfg.BaselineStride {
		c.stride = prefetch.NewStride(256)
	}
	if cfg.BaselineStream {
		c.stream = prefetch.NewStream(cfg.StreamCount, cfg.StreamDegree)
	}

	if cfg.EnableCriticality {
		switch cfg.CritSource {
		case "feedsbranch":
			c.Crit = criticality.NewHeuristic(criticality.HeurFeedsBranch, cfg.CritTable, cfg.CritRecord)
		case "robstall":
			c.Crit = criticality.NewHeuristic(criticality.HeurROBStall, cfg.CritTable, cfg.CritRecord)
		default:
			dc := criticality.DefaultConfig(cfg.CPU)
			dc.Table = cfg.CritTable
			dc.Record = cfg.CritRecord
			c.Crit = criticality.New(dc)
		}
	}
	if cfg.EnableTact && c.Crit != nil {
		c.Tact = tact.New(cfg.Tact, c.Crit)
		c.Tact.IssueData = func(addr uint64, now int64) {
			c.Hier.PrefetchData(c.xlat(addr), now)
		}
		c.Tact.ValueAt = func(addr uint64) (uint64, bool) {
			if c.values == nil {
				return 0, false
			}
			return c.values.ValueAt(addr)
		}
	}

	c.CPU = cpu.New(cfg.CPU)
	if cfg.GsharePredictorBits > 0 {
		c.CPU.BP = cpu.NewGshare(cfg.GsharePredictorBits)
	}
	c.CPU.Ports = cpu.Ports{
		Load:        c.load,
		StoreCommit: c.storeCommit,
		FetchLine:   c.fetchLine,
		OnDispatch:  c.onDispatch,
		OnRetire:    c.onRetire,
	}
	return c
}

// AttachTracer wires tr into every core's pipeline, cache hierarchy,
// TACT engine and criticality detector (per-core events carry the core
// id as their thread id). A nil or disabled tracer costs one predicted
// branch per event site — the simulation stays allocation-free either
// way. Pass nil to detach.
func (s *System) AttachTracer(tr *telemetry.Tracer) {
	for _, c := range s.Sims {
		tid := uint8(c.ID)
		c.CPU.Trace, c.CPU.TraceTID = tr, tid
		c.Hier.Trace = tr
		if c.Tact != nil {
			c.Tact.Trace, c.Tact.TraceTID = tr, tid
		}
		if det, ok := c.Crit.(*criticality.Detector); ok {
			det.Trace, det.TraceTID = tr, tid
		}
	}
}

// xlat maps a core-local address into the shared physical space so
// multi-programmed cores do not alias in the LLC or DRAM.
func (c *CoreSim) xlat(a uint64) uint64 { return a + uint64(c.ID)<<44 }

// xlatCode maps code addresses: with SharedCode, symmetric cores share
// the same physical code lines (no replication in the shared LLC).
func (c *CoreSim) xlatCode(a uint64) uint64 {
	if c.sys.Cfg.SharedCode {
		return a
	}
	return c.xlat(a)
}

func (c *CoreSim) load(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
	cfg := &c.sys.Cfg
	addr := c.xlat(in.Addr)

	if cfg.OraclePrefetch && (cfg.OracleAllLoads || (c.Crit != nil && c.Crit.IsCritical(in.PC))) {
		c.Hier.OraclePromoteData(addr, ready)
	}

	lat, lvl := c.Hier.Load(addr, ready)

	if c.stride != nil {
		if pa, ok := c.stride.OnLoad(in.PC, in.Addr); ok {
			c.Hier.PrefetchStrideL1(c.xlat(pa), ready)
		}
	}
	// The multi-stream prefetcher observes the L2-side access stream:
	// one event per new cache line touched by loads (demand misses and
	// the L1 prefetcher's fills both reach the L2 in hardware).
	if c.stream != nil {
		if la := in.Addr >> 6; la != c.lastLine {
			c.lastLine = la
			c.streamBuf = c.stream.OnAccess(in.Addr, c.streamBuf[:0])
			for _, a := range c.streamBuf {
				c.Hier.PrefetchStream(c.xlat(a), ready)
			}
		}
	}

	if cv := cfg.Convert; cv != nil && lvl == cv.From {
		if !cv.OnlyNonCritical || c.Crit == nil || !c.Crit.IsCritical(in.PC) {
			c.convDone++
			if cv.ToLat > lat {
				lat = cv.ToLat
			}
		}
	}
	return lat, lvl
}

func (c *CoreSim) storeCommit(in *trace.Inst, commit int64) {
	c.Hier.Store(c.xlat(in.Addr), commit)
}

func (c *CoreSim) fetchLine(line uint64, now int64) int64 {
	cfg := &c.sys.Cfg
	if cfg.OracleCodeAllHit {
		return cfg.L1Lat
	}
	var code *tact.CodePrefetcher
	if c.Tact != nil {
		code = c.Tact.Code
	}
	if code != nil {
		code.OnLine(line)
	}
	lat, lvl := c.Hier.Fetch(c.xlatCode(line), now)
	if lvl != cache.HitL1 && code != nil {
		code.RunAhead(line, now, func(a uint64, t int64) {
			c.Hier.PrefetchCode(c.xlatCode(a), t)
		})
	}
	return lat
}

func (c *CoreSim) onDispatch(in *trace.Inst, dispatch int64, seq int64) {
	if c.Tact != nil {
		c.Tact.OnDispatch(in, dispatch)
	}
}

func (c *CoreSim) onRetire(r *cpu.Retired) {
	c.retired++
	if c.Crit != nil {
		c.Crit.OnRetire(r)
	}
}

// SetWorkload attaches a generator (and its memory-content oracle, if
// it provides one) to the core, and pre-populates the LLC with the
// workload's declared steady-state-resident regions.
func (c *CoreSim) SetWorkload(gen trace.Generator) {
	c.gen = gen
	c.values = nil
	if vs, ok := gen.(trace.ValueSource); ok {
		c.values = vs
	}
	if pw, ok := gen.(trace.Prewarmer); ok {
		for _, reg := range pw.PrewarmRegions() {
			for a := reg.Base; a < reg.Base+reg.Size; a += trace.CacheLineSize {
				c.Hier.PrewarmLine(c.xlat(a))
			}
		}
	}
}

// resetStats zeroes measurement counters after warmup (timing and
// learned state are preserved).
func (c *CoreSim) resetStats() {
	// The timeliness histogram is reused rather than re-allocated so the
	// post-warmup measurement loop stays allocation-free (an empty
	// histogram merges identically to a nil one).
	hist := c.Hier.Stats.TactTimeliness
	if hist != nil {
		hist.Reset()
	}
	c.Hier.Stats = cache.HierStats{TactTimeliness: hist}
	c.Hier.L1D.ResetStats()
	c.Hier.L1I.ResetStats()
	if c.Hier.L2 != nil {
		c.Hier.L2.ResetStats()
	}
	c.convDone = 0
	c.CPU.CoreStats = cpu.CoreStats{}
	if g, ok := c.CPU.BP.(*cpu.Gshare); ok {
		g.BPStats = cpu.BPStats{}
	}
	if c.stride != nil {
		c.stride.Stats = prefetch.StrideStats{}
	}
	if c.stream != nil {
		c.stream.Stats = prefetch.StreamStats{}
	}
}

// result snapshots the core's measurements. cycles0 is the cycle count
// at the end of warmup.
func (c *CoreSim) result(cycles0 int64) Result {
	r := Result{
		Workload: c.gen.Name(),
		Category: c.gen.Category(),
		Config:   c.sys.Cfg.Name,
		Insts:    c.CPU.Insts,
		Cycles:   c.CPU.Cycles() - cycles0,

		Mispredicts: c.CPU.Mispredicts,
		CodeStalls:  c.CPU.CodeStalls,

		Hier: c.Hier.Stats,
		L1D:  c.Hier.L1D.Stats,
		L1I:  c.Hier.L1I.Stats,
		LLC:  c.sys.LLC.Stats,
		DRAM: c.sys.Mem.Stats,
		Ring: c.sys.Ring.Stats,

		ConvertedLoads: c.convDone,
	}
	if c.Hier.L2 != nil {
		r.L2 = c.Hier.L2.Stats
		r.HasL2 = true
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Insts) / float64(r.Cycles)
	}
	if c.Crit != nil {
		r.Crit = c.Crit.Snapshot()
		r.CriticalPCs = c.Crit.CriticalCount()
	}
	if c.Tact != nil {
		r.Tact = c.Tact.Stats
		if c.Tact.Code != nil {
			r.CodePfLearned = c.Tact.Code.Learned
			r.CodePfIssued = c.Tact.Code.Issued
		}
	}
	return r
}

// RunST runs a single workload on core 0 for insts instructions after a
// warmup of warmup instructions (caches and predictors stay warm;
// counters are reset at the warmup boundary). It is the composition of
// the phase methods in window.go; the sampling subsystem re-composes
// them around snapshot/restore.
func (s *System) RunST(gen trace.Generator, insts, warmup int64) Result {
	s.WarmupST(gen, warmup)
	win := s.BeginMeasure()
	s.StepST(insts)
	return s.EndMeasure(win)
}

// RunMP runs one workload per core, interleaved in rough time order,
// until every core has retired insts instructions past its warmup.
// Returns one Result per core.
func (s *System) RunMP(gens []trace.Generator, insts, warmup int64) []Result {
	n := len(gens)
	if n > len(s.Sims) {
		n = len(s.Sims)
	}
	type state struct {
		cycles0 int64
		warm    bool
		done    bool
	}
	st := make([]state, n)
	for i := 0; i < n; i++ {
		s.Sims[i].SetWorkload(gens[i])
	}
	var in trace.Inst
	active := n
	warming := n
	for active > 0 {
		// Advance the core furthest behind in time.
		best, bestC := -1, int64(1<<62-1)
		for i := 0; i < n; i++ {
			if st[i].done {
				continue
			}
			if cy := s.Sims[i].CPU.Cycles(); cy < bestC {
				bestC, best = cy, i
			}
		}
		c := s.Sims[best]
		// Step a small batch to amortize the scan.
		for k := 0; k < 32 && !st[best].done; k++ {
			c.gen.Next(&in)
			c.CPU.Step(&in)
			if !st[best].warm && c.retired >= warmup {
				st[best].warm = true
				st[best].cycles0 = c.CPU.Cycles()
				c.resetStats()
				// The shared LLC/DRAM/ring counters can only be reset
				// once; do it when the last core crosses its warmup
				// boundary so no core's measurement window includes
				// another core's warmup traffic (mirrors RunST).
				if warming--; warming == 0 {
					s.LLC.ResetStats()
					s.Mem.Stats = memory.Stats{}
					s.Ring.Stats = interconnect.Stats{}
				}
			}
			if st[best].warm && c.CPU.Insts >= insts {
				st[best].done = true
				active--
			}
		}
	}
	out := make([]Result, n)
	for i := 0; i < n; i++ {
		out[i] = s.Sims[i].result(st[i].cycles0)
	}
	return out
}
