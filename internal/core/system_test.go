package core

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/config"
	"catch/internal/trace"
	"catch/internal/workloads"
)

const (
	testInsts  = 40_000
	testWarmup = 20_000
)

func runWorkload(t *testing.T, name string, cfg config.SystemConfig) Result {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	sys := NewSystem(cfg)
	return sys.RunST(w.NewGen(), testInsts, testWarmup)
}

func TestRunSTBasics(t *testing.T) {
	r := runWorkload(t, "hmmer", config.BaselineExclusive())
	if r.Insts != testInsts {
		t.Fatalf("insts = %d", r.Insts)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Fatalf("IPC %v out of range", r.IPC)
	}
	if r.Hier.Loads == 0 || r.Hier.Fetches == 0 {
		t.Fatalf("no memory activity: %+v", r.Hier)
	}
	if r.Workload != "hmmer" || r.Category != "ISPEC" || r.Config != "baseline-excl" {
		t.Fatalf("metadata wrong: %+v", r)
	}
	if !r.HasL2 {
		t.Fatal("baseline result lost its L2 stats")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runWorkload(t, "mcf", config.BaselineExclusive())
	b := runWorkload(t, "mcf", config.BaselineExclusive())
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Fatalf("nondeterministic runs: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.Hier != b.Hier {
		t.Fatalf("hierarchy stats diverged")
	}
}

func TestNoL2ConfigHasNoL2(t *testing.T) {
	cfg := config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "nol2")
	r := runWorkload(t, "hmmer", cfg)
	if r.HasL2 {
		t.Fatal("noL2 run reported L2 stats")
	}
	if r.Hier.LoadL2 != 0 {
		t.Fatal("loads served from a nonexistent L2")
	}
}

func TestL2RemovalHurtsHotL2Workload(t *testing.T) {
	base := runWorkload(t, "hmmer", config.BaselineExclusive())
	nol2 := runWorkload(t, "hmmer", config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "nol2"))
	if nol2.IPC >= base.IPC {
		t.Fatalf("removing L2 did not hurt hmmer: %.3f vs %.3f", nol2.IPC, base.IPC)
	}
}

func TestCATCHRecoversHotL2Workload(t *testing.T) {
	nol2cfg := config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "nol2")
	nol2 := runWorkload(t, "hmmer", nol2cfg)
	catch := runWorkload(t, "hmmer", config.WithCATCH(nol2cfg, "nol2-catch"))
	if catch.IPC <= nol2.IPC*1.2 {
		t.Fatalf("CATCH did not recover hmmer: %.3f vs %.3f", catch.IPC, nol2.IPC)
	}
	if catch.Hier.TactIssued == 0 || catch.Hier.TactUsed == 0 {
		t.Fatalf("TACT inactive: %+v", catch.Hier)
	}
}

func TestCATCHOnBaselineHelps(t *testing.T) {
	base := runWorkload(t, "mcf", config.BaselineExclusive())
	catch := runWorkload(t, "mcf", config.WithCATCH(config.BaselineExclusive(), "catch"))
	if catch.IPC <= base.IPC {
		t.Fatalf("CATCH on baseline did not help mcf: %.3f vs %.3f", catch.IPC, base.IPC)
	}
	if catch.Tact.FeederTrained == 0 {
		t.Fatal("mcf feeder association not trained")
	}
}

func TestChaseResistsCATCH(t *testing.T) {
	// namd-like chase loads cannot be prefetched: CATCH gains are small.
	nol2cfg := config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "nol2")
	plain := runWorkload(t, "namd", nol2cfg)
	catch := runWorkload(t, "namd", config.WithCATCH(nol2cfg, "nol2-catch"))
	if catch.IPC > plain.IPC*1.10 {
		t.Fatalf("pointer chase unexpectedly accelerated: %.3f vs %.3f", catch.IPC, plain.IPC)
	}
}

func TestInclusiveBaselineRuns(t *testing.T) {
	r := runWorkload(t, "tpcc", config.BaselineInclusive())
	if r.IPC <= 0 {
		t.Fatal("inclusive baseline produced no progress")
	}
}

func TestOraclePrefetchBeatsBaseline(t *testing.T) {
	base := config.BaselineExclusive()
	base.BaselineStride = false
	base.BaselineStream = false
	w, _ := workloads.ByName("hmmer")
	plain := NewSystem(base).RunST(w.NewGen(), testInsts, testWarmup)
	oracle := NewSystem(config.WithOraclePrefetch(config.BaselineExclusive(), 32, "oracle")).
		RunST(w.NewGen(), testInsts, testWarmup)
	if oracle.IPC <= plain.IPC {
		t.Fatalf("oracle prefetch did not help: %.3f vs %.3f", oracle.IPC, plain.IPC)
	}
	if oracle.Hier.OraclePromotions == 0 {
		t.Fatal("oracle never promoted")
	}
}

func TestConvertSpecInflatesLatency(t *testing.T) {
	spec := config.ConvertSpec{From: cache.HitL1, ToLat: 15}
	cfg := config.WithConvert(config.BaselineExclusive(), spec, 0, "convert")
	conv := runWorkload(t, "hmmer", cfg)
	base := runWorkload(t, "hmmer", config.BaselineExclusive())
	if conv.IPC >= base.IPC {
		t.Fatalf("converting ALL L1 hits to L2 latency did not hurt: %.3f vs %.3f", conv.IPC, base.IPC)
	}
	if conv.ConvertedLoads == 0 {
		t.Fatal("no loads converted")
	}
}

func TestConvertNonCriticalHurtsLess(t *testing.T) {
	all := config.WithConvert(config.BaselineExclusive(),
		config.ConvertSpec{From: cache.HitL2, ToLat: 40}, 0, "conv-all")
	ncr := config.WithConvert(config.BaselineExclusive(),
		config.ConvertSpec{From: cache.HitL2, ToLat: 40, OnlyNonCritical: true},
		2 /* MaskL2 */, "conv-ncrit")
	ra := runWorkload(t, "hmmer", all)
	rn := runWorkload(t, "hmmer", ncr)
	if rn.IPC < ra.IPC {
		t.Fatalf("non-critical conversion hurt more than converting all: %.3f vs %.3f", rn.IPC, ra.IPC)
	}
}

func TestLatencyDeltaHurts(t *testing.T) {
	base := runWorkload(t, "hmmer", config.BaselineExclusive())
	slow := runWorkload(t, "hmmer",
		config.WithLatencyDelta(config.BaselineExclusive(), cache.HitL1, 3, "l1+3"))
	if slow.IPC >= base.IPC {
		t.Fatalf("+3 cycles of L1 latency did not hurt: %.3f vs %.3f", slow.IPC, base.IPC)
	}
}

func TestRunMPProducesPerCoreResults(t *testing.T) {
	cfg := config.BaselineExclusive()
	cfg.Cores = 4
	mixes := workloads.Mixes()
	sys := NewSystem(cfg)
	rs := sys.RunMP(mixes[0].Gens(), 20_000, 8_000)
	if len(rs) != 4 {
		t.Fatalf("got %d results", len(rs))
	}
	for i, r := range rs {
		if r.Insts != 20_000 {
			t.Fatalf("core %d insts = %d", i, r.Insts)
		}
		if r.IPC <= 0 {
			t.Fatalf("core %d made no progress", i)
		}
	}
}

func TestRunMPResetsSharedStatsAtWarmup(t *testing.T) {
	// Two runs over the identical instruction stream: one measures all
	// W+N instructions, the other warms up for W and measures N. The
	// shared LLC/DRAM/ring counters of the warmed run must exclude the
	// warmup traffic, so they come out strictly smaller (they used to
	// be equal — shared stats were never reset at the warmup boundary).
	const w, n = 12_000, 20_000
	mix := workloads.Mixes()[0]
	cfg := config.BaselineExclusive()
	cfg.Cores = 4

	full := NewSystem(cfg).RunMP(mix.Gens(), w+n, 0)
	warmed := NewSystem(cfg).RunMP(mix.Gens(), n, w)

	if warmed[0].LLC.Lookups == 0 {
		t.Fatal("no LLC activity in measurement window")
	}
	if warmed[0].LLC.Lookups >= full[0].LLC.Lookups {
		t.Fatalf("warmup traffic still in shared LLC stats: warmed %d >= full %d",
			warmed[0].LLC.Lookups, full[0].LLC.Lookups)
	}
	if warmed[0].Ring.Flits >= full[0].Ring.Flits {
		t.Fatalf("warmup traffic still in ring stats: warmed %d >= full %d",
			warmed[0].Ring.Flits, full[0].Ring.Flits)
	}
	// All cores snapshot the same shared counters.
	for i := 1; i < 4; i++ {
		if warmed[i].LLC != warmed[0].LLC {
			t.Fatalf("core %d reports different shared LLC stats", i)
		}
	}
}

func TestMPCoresDoNotAlias(t *testing.T) {
	cfg := config.BaselineExclusive()
	cfg.Cores = 2
	sys := NewSystem(cfg)
	a := sys.Sims[0].xlat(0x1000)
	b := sys.Sims[1].xlat(0x1000)
	if a == b {
		t.Fatal("cores share physical addresses")
	}
}

func TestSharedLLCContention(t *testing.T) {
	// The same workload run alone vs 4-way RATE must not speed up.
	w, _ := workloads.ByName("sphinx3")
	solo := config.BaselineExclusive()
	soloR := NewSystem(solo).RunST(w.NewGen(), 20_000, 8_000)

	mp := config.BaselineExclusive()
	mp.Cores = 4
	gens := []trace.Generator{w.NewGen(), w.NewGen(), w.NewGen(), w.NewGen()}
	rs := NewSystem(mp).RunMP(gens, 20_000, 8_000)
	if rs[0].IPC > soloR.IPC*1.05 {
		t.Fatalf("shared LLC contention absent: mp %.3f vs solo %.3f", rs[0].IPC, soloR.IPC)
	}
}

func TestResultHelpers(t *testing.T) {
	r := runWorkload(t, "hmmer", config.BaselineExclusive())
	if hr := r.L1LoadHitRate(); hr <= 0 || hr > 1 {
		t.Fatalf("L1 hit rate %v", hr)
	}
	if r.CacheTraffic() == 0 {
		t.Fatal("cache traffic zero")
	}
	if r.LoadMPKI() < 0 {
		t.Fatal("negative MPKI")
	}
}

func TestBaselinePrefetchersActive(t *testing.T) {
	r := runWorkload(t, "libquantum", config.BaselineExclusive())
	if r.Hier.StridePfIssued == 0 {
		t.Fatal("stride prefetcher inactive on streaming workload")
	}
	if r.Hier.StreamPfIssued == 0 {
		t.Fatal("stream prefetcher inactive on streaming workload")
	}
}

func TestCodePrefetcherActiveOnServer(t *testing.T) {
	cfg := config.WithCATCH(config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "x"), "nol2-catch")
	r := runWorkload(t, "tpcc", cfg)
	if r.CodePfIssued == 0 {
		t.Fatal("code run-ahead inactive on server workload")
	}
}
