package core

import (
	"bytes"
	"reflect"
	"testing"

	"catch/internal/config"
	"catch/internal/trace"
	"catch/internal/workloads"
)

// snapshotConfigs are the microarchitectures the round-trip golden
// test must preserve bit-for-bit: the plain baseline (L2, stride and
// stream prefetchers, no CATCH hardware), the full CATCH configuration
// (detector, TACT with all components, code prefetcher), and a variant
// exercising every optional codec at once (gshare predictor, heuristic
// criticality source, DRRIP replacement).
func snapshotConfigs() []config.SystemConfig {
	base := config.BaselineExclusive()

	noL2 := config.NoL2(config.BaselineExclusive(), 6*1024*1024+512*1024, 13, "nol2-6.5")
	catch := config.WithCATCH(noL2, "catch-snap")

	exotic := config.WithCATCH(config.BaselineExclusive(), "exotic-snap")
	exotic.GsharePredictorBits = 12
	exotic.CritSource = "feedsbranch"
	exotic.LLCPolicy = "drrip"

	return []config.SystemConfig{base, catch, exotic}
}

func materialize(t *testing.T, total int64) *trace.Materialized {
	t.Helper()
	w, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("workload mcf not found")
	}
	m, err := trace.NewStore("").Materialize(&w, total)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return m
}

// TestSnapshotRoundTrip is the snapshot golden test: for each pinned
// configuration, warming a system, snapshotting it, restoring into a
// fresh system and measuring must be byte-identical to simulating
// straight through — the same Result and, stronger, the same final
// whole-system snapshot image.
func TestSnapshotRoundTrip(t *testing.T) {
	const insts, warmup = 4_000, 2_000
	m := materialize(t, insts+warmup)
	for _, cfg := range snapshotConfigs() {
		t.Run(cfg.Name, func(t *testing.T) {
			// Path A: simulate through.
			sysA := NewSystem(cfg)
			resA := sysA.RunST(m.NewReplay(), insts, warmup)
			snapA, err := sysA.Snapshot()
			if err != nil {
				t.Fatalf("final snapshot (through): %v", err)
			}

			// Path B: warm, freeze.
			sysB := NewSystem(cfg)
			sysB.WarmupST(m.NewReplay(), warmup)
			warm, err := sysB.Snapshot()
			if err != nil {
				t.Fatalf("warm snapshot: %v", err)
			}

			// Path C: thaw into a fresh system, resume, measure.
			sysC := NewSystem(cfg)
			if err := sysC.Restore(warm); err != nil {
				t.Fatalf("restore: %v", err)
			}
			rep := m.NewReplay()
			rep.SeekTo(warmup)
			sysC.AttachST(rep)
			win := sysC.BeginMeasure()
			sysC.StepST(insts)
			resC := sysC.EndMeasure(win)
			snapC, err := sysC.Snapshot()
			if err != nil {
				t.Fatalf("final snapshot (restored): %v", err)
			}

			if !reflect.DeepEqual(resA, resC) {
				t.Errorf("restore-then-simulate Result diverged from simulate-through:\n through %+v\n restored %+v", resA, resC)
			}
			if !bytes.Equal(snapA, snapC) {
				t.Errorf("final state images diverged: %d vs %d bytes (first diff at %d)",
					len(snapA), len(snapC), firstDiff(snapA, snapC))
			}

			// Snapshots are deterministic: freezing the same state twice
			// yields the same bytes.
			again, err := sysC.Snapshot()
			if err != nil {
				t.Fatalf("re-snapshot: %v", err)
			}
			if !bytes.Equal(snapC, again) {
				t.Error("snapshotting the same state twice produced different images")
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestSnapshotRejectsCorruption pins the integrity checks: bit flips,
// truncation, a wrong magic and a config mismatch must all fail
// loudly, never half-restore.
func TestSnapshotRejectsCorruption(t *testing.T) {
	const insts, warmup = 1_000, 500
	m := materialize(t, insts+warmup)
	cfg := snapshotConfigs()[1]
	sys := NewSystem(cfg)
	sys.WarmupST(m.NewReplay(), warmup)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	fresh := func() *System { return NewSystem(cfg) }

	if err := fresh().Restore(snap[:len(snap)/2]); err == nil {
		t.Error("truncated image restored without error")
	}
	if err := fresh().Restore(snap[:10]); err == nil {
		t.Error("near-empty image restored without error")
	}

	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/2] ^= 0x40
	if err := fresh().Restore(flipped); err == nil {
		t.Error("bit-flipped image restored without error")
	}

	badMagic := append([]byte(nil), snap...)
	badMagic[0] ^= 0xFF
	if err := fresh().Restore(badMagic); err == nil {
		t.Error("bad-magic image restored without error")
	}

	other := NewSystem(snapshotConfigs()[0])
	if err := other.Restore(snap); err == nil {
		t.Error("image restored into a system with a different configuration")
	}
}
