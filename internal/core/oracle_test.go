package core

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/config"
	"catch/internal/workloads"
)

// Tests of the oracle machinery (§III-C) and the latency-conversion
// machinery (§III-B) at system level.

func TestOracleAllLoadsGEQTracked(t *testing.T) {
	w, _ := workloads.ByName("hmmer")
	run := func(cfg config.SystemConfig) float64 {
		return NewSystem(cfg).RunST(w.NewGen(), testInsts, testWarmup).IPC
	}
	tracked := run(config.WithOraclePrefetch(config.BaselineExclusive(), 32, "o32"))
	all := run(config.WithOraclePrefetch(config.BaselineExclusive(), 0, "oall"))
	if all < tracked*0.98 {
		t.Fatalf("All-PC oracle (%.3f) below 32-PC oracle (%.3f)", all, tracked)
	}
}

func TestOracleOnNoL2MatchesWithL2(t *testing.T) {
	// Paper Fig 5's last bar: with the oracle in play, removing the L2
	// costs (almost) nothing.
	w, _ := workloads.ByName("hmmer")
	withL2 := config.WithOraclePrefetch(config.BaselineExclusive(), 2048, "o")
	noL2 := config.WithOraclePrefetch(
		config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "n"), 2048, "on")
	a := NewSystem(withL2).RunST(w.NewGen(), testInsts, testWarmup).IPC
	b := NewSystem(noL2).RunST(w.NewGen(), testInsts, testWarmup).IPC
	if b < a*0.93 {
		t.Fatalf("oracle noL2 (%.3f) far below oracle with L2 (%.3f)", b, a)
	}
}

func TestConvertCountsMatchLevels(t *testing.T) {
	// Converting ALL hits at a level must convert exactly the loads
	// served at that level.
	spec := config.ConvertSpec{From: cache.HitL2, ToLat: 40}
	cfg := config.WithConvert(config.BaselineExclusive(), spec, 0, "conv")
	r := runWorkload(t, "hmmer", cfg)
	if r.ConvertedLoads != r.Hier.LoadL2 {
		t.Fatalf("converted %d loads but %d were L2 hits", r.ConvertedLoads, r.Hier.LoadL2)
	}
}

func TestConvertL1CostsMoreThanL2(t *testing.T) {
	// The paper's Fig 4 ordering: converting all L1 hits hurts far more
	// than converting all L2 hits.
	l1 := config.WithConvert(config.BaselineExclusive(),
		config.ConvertSpec{From: cache.HitL1, ToLat: 15}, 0, "l1conv")
	l2 := config.WithConvert(config.BaselineExclusive(),
		config.ConvertSpec{From: cache.HitL2, ToLat: 40}, 0, "l2conv")
	base := runWorkload(t, "xalancbmk", config.BaselineExclusive())
	r1 := runWorkload(t, "xalancbmk", l1)
	r2 := runWorkload(t, "xalancbmk", l2)
	loss1 := 1 - r1.IPC/base.IPC
	loss2 := 1 - r2.IPC/base.IPC
	if loss1 <= loss2 {
		t.Fatalf("L1 conversion loss %.3f not above L2 conversion loss %.3f", loss1, loss2)
	}
}

func TestGshareSystemRuns(t *testing.T) {
	cfg := config.BaselineExclusive()
	cfg.GsharePredictorBits = 12
	r := runWorkload(t, "gobmk", cfg)
	if r.IPC <= 0 {
		t.Fatal("no progress with gshare installed")
	}
	if r.Mispredicts == 0 {
		t.Fatal("gshare produced zero mispredictions on branchy code")
	}
}

func TestSharedCodeReducesColdCodeMemoryFetches(t *testing.T) {
	// RATE-4 with shared code: once one core has pulled a code line on
	// die, its siblings find it in the shared LLC, so far fewer code
	// fetches go to memory than with per-core replicated code.
	mix := workloads.Mixes()[1] // rate4-gcc: a big-code server workload
	memFetches := func(shared bool) uint64 {
		// Inclusive LLC: memory fills allocate in the shared LLC, so
		// sharing is visible on the cold path (an exclusive LLC only
		// holds victims, where sharing shows up gradually instead).
		cfg := config.BaselineInclusive()
		cfg.Cores = 4
		cfg.SharedCode = shared
		sys := NewSystem(cfg)
		// No warmup: the cold path is exactly what sharing changes.
		rs := sys.RunMP(mix.Gens(), 20_000, 0)
		var m uint64
		for _, r := range rs {
			m += r.Hier.FetchMem
		}
		return m
	}
	repl, shared := memFetches(false), memFetches(true)
	if repl == 0 {
		t.Fatal("no cold code fetches in the replicated run")
	}
	if shared >= repl {
		t.Fatalf("shared code did not reduce memory code fetches: %d vs %d", shared, repl)
	}
}

func TestHeuristicSourceDrivesCATCH(t *testing.T) {
	cfg := config.WithCATCH(config.BaselineExclusive(), "catch-heur")
	cfg.CritSource = "robstall"
	r := runWorkload(t, "hmmer", cfg)
	if r.Hier.TactIssued == 0 {
		t.Fatal("TACT idle under heuristic criticality source")
	}
}
