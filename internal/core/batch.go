package core

import (
	"fmt"

	"catch/internal/config"
	"catch/internal/interconnect"
	"catch/internal/memory"
	"catch/internal/trace"
)

// batchChunk is the lock-step granularity: each system consumes this
// many instructions of the shared trace before the kernel switches to
// the next system. Large enough to amortize re-entering a system's
// working set into the host caches, small enough that the active trace
// window stays resident across all systems in the batch.
const batchChunk = 1024

// RunBatch steps one private System per configuration through the same
// materialized trace in lock-step, reproducing RunST's semantics
// exactly for each: prewarm, `warmup` warmup instructions, a stats
// reset at the warmup boundary, then `insts` measured instructions.
// The trace is decoded once for the whole batch instead of once per
// configuration, so results are byte-identical to per-config RunST
// runs over an equivalent replay while the per-instruction trace work
// is amortized len(cfgs) ways.
func RunBatch(m *trace.Materialized, cfgs []config.SystemConfig, insts, warmup int64) ([]Result, error) {
	if insts <= 0 {
		return nil, fmt.Errorf("core: batch insts must be positive, got %d", insts)
	}
	if warmup < 0 {
		return nil, fmt.Errorf("core: batch warmup must be non-negative, got %d", warmup)
	}
	total := warmup + insts
	buf := m.Insts()
	if int64(len(buf)) < total {
		return nil, fmt.Errorf("core: materialized trace %s holds %d instructions, need %d",
			m.Name(), len(buf), total)
	}
	buf = buf[:total]
	out := make([]Result, len(cfgs))
	if len(cfgs) == 0 {
		return out, nil
	}
	sims := make([]*System, len(cfgs))
	for k := range cfgs {
		sims[k] = NewSystem(cfgs[k])
		sims[k].Sims[0].SetWorkload(m.NewReplay())
	}
	for base := int64(0); base < warmup; base += batchChunk {
		end := min(base+batchChunk, warmup)
		for _, s := range sims {
			stepChunk(s.Sims[0], buf[base:end])
		}
	}
	// Warmup boundary, mirroring RunST: measurement counters reset,
	// timing and learned state preserved.
	cycles0 := make([]int64, len(sims))
	for k, s := range sims {
		c := s.Sims[0]
		c.resetStats()
		s.LLC.ResetStats()
		s.Mem.Stats = memory.Stats{}
		s.Ring.Stats = interconnect.Stats{}
		cycles0[k] = c.CPU.Cycles()
	}
	for base := warmup; base < total; base += batchChunk {
		end := min(base+batchChunk, total)
		for _, s := range sims {
			stepChunk(s.Sims[0], buf[base:end])
		}
	}
	for k, s := range sims {
		out[k] = s.Sims[0].result(cycles0[k])
	}
	return out, nil
}

// stepChunk advances one core through a chunk of the shared trace. The
// shared records must stay pristine, and a branch predictor rewrites
// in.Mispred (cpu.Core.Step's only mutation of *in), so
// predictor-equipped cores step a private copy of each record; every
// other core steps the shared records in place.
//
//catch:hotpath
func stepChunk(c *CoreSim, chunk []trace.Inst) {
	if c.CPU.BP != nil {
		in := &c.batchIn
		for i := range chunk {
			*in = chunk[i]
			c.CPU.Step(in)
		}
		return
	}
	for i := range chunk {
		c.CPU.Step(&chunk[i])
	}
}
