// Package core assembles the full CATCH system: the OOO timing model,
// the cache hierarchy, the baseline prefetchers, the hardware
// criticality detector and the TACT prefetchers, for single-core and
// 4-way multi-programmed simulation.
package core

import (
	"catch/internal/cache"
	"catch/internal/criticality"
	"catch/internal/interconnect"
	"catch/internal/memory"
	"catch/internal/tact"
)

// Result captures everything measured in one run.
type Result struct {
	Workload string
	Category string
	Config   string

	Insts  int64
	Cycles int64
	IPC    float64

	Mispredicts int64
	CodeStalls  int64

	Hier  cache.HierStats
	L1D   cache.Stats
	L1I   cache.Stats
	L2    cache.Stats // zero-valued when the config has no L2
	HasL2 bool
	LLC   cache.Stats
	DRAM  memory.Stats
	Ring  interconnect.Stats

	Crit criticality.Stats
	Tact tact.Stats

	CriticalPCs    int
	ConvertedLoads uint64
	CodePfLearned  uint64
	CodePfIssued   uint64

	// Sample is set only on results extrapolated from representative
	// intervals (nil for fully simulated runs, keeping their encodings
	// unchanged).
	Sample *SampleMeta `json:",omitempty"`
}

// SampleMeta describes how a sampled result was extrapolated and how
// far to trust it. The relative errors are one-standard-error bounds
// derived from the within-cluster variance of the profiling pass.
type SampleMeta struct {
	Interval      int64 `json:"interval"`
	K             int   `json:"k"`
	MeasuredInsts int64 `json:"measuredInsts"`
	TotalInsts    int64 `json:"totalInsts"`

	RelErrIPC      float64 `json:"relErrIPC"`
	RelErrL1DMiss  float64 `json:"relErrL1DMiss"`
	RelErrMemLoads float64 `json:"relErrMemLoads"`
}

// L1LoadHitRate returns the fraction of demand loads served by the L1.
func (r *Result) L1LoadHitRate() float64 {
	if r.Hier.Loads == 0 {
		return 0
	}
	return float64(r.Hier.LoadL1) / float64(r.Hier.Loads)
}

// LoadMPKI returns LLC load misses per kilo-instruction.
func (r *Result) LoadMPKI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.Hier.LoadMem) * 1000 / float64(r.Insts)
}

// ConvertedFrac returns the fraction of demand loads whose latency the
// Fig 4 conversion inflated.
func (r *Result) ConvertedFrac() float64 {
	if r.Hier.Loads == 0 {
		return 0
	}
	return float64(r.ConvertedLoads) / float64(r.Hier.Loads)
}

// CacheTraffic returns total lookups+fills across on-die caches (power
// proxy, §VI-E).
func (r *Result) CacheTraffic() uint64 {
	t := r.L1D.Lookups + r.L1D.Fills + r.L1I.Lookups + r.L1I.Fills +
		r.LLC.Lookups + r.LLC.Fills
	if r.HasL2 {
		t += r.L2.Lookups + r.L2.Fills
	}
	return t
}

// OuterCacheTraffic returns L2+LLC lookups+fills — the "cache traffic"
// the paper's §VI-E example counts when comparing hierarchies.
func (r *Result) OuterCacheTraffic() uint64 {
	t := r.LLC.Lookups + r.LLC.Fills
	if r.HasL2 {
		t += r.L2.Lookups + r.L2.Fills
	}
	return t
}
