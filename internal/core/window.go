package core

import (
	"catch/internal/criticality"
	"catch/internal/interconnect"
	"catch/internal/memory"
	"catch/internal/tact"
	"catch/internal/trace"
)

// The single-thread run is split into composable phases so the
// sampling subsystem can slot snapshot/restore between warmup and
// measurement and measure short windows at arbitrary stream offsets:
//
//	WarmupST  attach (with LLC prewarm) + run the warmup phase
//	AttachST  attach only — the restore path, whose prewarm state is
//	          already inside the restored image
//	BeginMeasure  the warmup-boundary counter reset
//	StepST    advance N instructions (unmeasured gap or measured window)
//	EndMeasure    capture a Result for the window
//
// RunST is exactly WarmupST+BeginMeasure+StepST+EndMeasure; the golden
// fig13 hash pins that the split changed nothing.

// Window marks an open measurement window on core 0.
type Window struct {
	cycles0 int64
}

// WarmupST attaches gen to core 0 (prewarming the LLC with the
// workload's declared resident regions) and runs the warmup phase.
func (s *System) WarmupST(gen trace.Generator, warmup int64) {
	c := s.Sims[0]
	c.SetWorkload(gen)
	var in trace.Inst
	for i := int64(0); i < warmup; i++ {
		gen.Next(&in)
		c.CPU.Step(&in)
	}
}

// AttachST attaches gen to core 0 without prewarming the LLC. It is
// the restore-path counterpart of SetWorkload: a restored snapshot
// already contains the prewarm fills (and everything the warmup run
// did to them), so re-prewarming would corrupt the image.
func (s *System) AttachST(gen trace.Generator) {
	c := s.Sims[0]
	c.gen = gen
	c.values = nil
	if vs, ok := gen.(trace.ValueSource); ok {
		c.values = vs
	}
}

// BeginMeasure performs the warmup-boundary reset on core 0 and the
// shared LLC/DRAM/ring counters, opening a measurement window.
func (s *System) BeginMeasure() Window {
	c := s.Sims[0]
	c.resetStats()
	s.LLC.ResetStats()
	s.Mem.Stats = memory.Stats{}
	s.Ring.Stats = interconnect.Stats{}
	return Window{cycles0: c.CPU.Cycles()}
}

// StepST advances core 0 by n instructions of its attached generator.
// The scratch record lives on the CoreSim (Step's argument escapes
// into the port closures), so repeated short windows stay
// allocation-free.
func (s *System) StepST(n int64) {
	c := s.Sims[0]
	for i := int64(0); i < n; i++ {
		c.gen.Next(&c.batchIn)
		c.CPU.Step(&c.batchIn)
	}
}

// EndMeasure captures core 0's Result for the open window.
func (s *System) EndMeasure(win Window) Result {
	return s.Sims[0].result(win.cycles0)
}

// CumulativeBase records the run-cumulative counters that BeginMeasure
// does not reset (criticality detector, TACT engine, code prefetcher).
// Capturing one before a window and rebasing with EndMeasureDelta
// yields a window-local view of those counters too.
type CumulativeBase struct {
	Crit          criticality.Stats
	Tact          tact.Stats
	CodePfLearned uint64
	CodePfIssued  uint64
}

// CaptureCumulative reads core 0's run-cumulative counters.
func (s *System) CaptureCumulative() CumulativeBase {
	c := s.Sims[0]
	var b CumulativeBase
	if c.Crit != nil {
		b.Crit = c.Crit.Snapshot()
	}
	if c.Tact != nil {
		b.Tact = c.Tact.Stats
		if c.Tact.Code != nil {
			b.CodePfLearned = c.Tact.Code.Learned
			b.CodePfIssued = c.Tact.Code.Issued
		}
	}
	return b
}

// EndMeasureDelta is EndMeasure with the run-cumulative counters
// rebased against base, so every counter in the Result — including the
// criticality and TACT blocks — covers only the open window.
func (s *System) EndMeasureDelta(win Window, base CumulativeBase) Result {
	r := s.EndMeasure(win)
	// The Result's histogram normally aliases the live one (terminal
	// results never see another reset); window results do, so they get
	// their own copy.
	r.Hier.TactTimeliness = r.Hier.TactTimeliness.Clone()
	r.Crit = r.Crit.Delta(base.Crit)
	r.Tact = r.Tact.Delta(base.Tact)
	r.CodePfLearned -= base.CodePfLearned
	r.CodePfIssued -= base.CodePfIssued
	return r
}
