// Package interconnect models the on-die ring connecting cores to LLC
// slices. It provides per-hop latency and traffic accounting (request,
// data and write-back message classes) used by the power model: the
// paper's two-level CATCH hierarchy trades lower cache/memory traffic
// for substantially more interconnect traffic (§VI-E).
package interconnect

// MsgClass labels a ring message for traffic/energy accounting.
type MsgClass uint8

// Message classes.
const (
	MsgRequest   MsgClass = iota // address-only request, 1 flit
	MsgData                      // 64B data response, 4 flits
	MsgWriteback                 // 64B dirty eviction, 4 flits
	MsgSnoop                     // coherence probe, 1 flit
	numClasses
)

// FlitsPerClass gives the flit cost of each message class (16B flits).
var FlitsPerClass = [numClasses]uint64{1, 4, 4, 1}

// Stats aggregates ring activity.
type Stats struct {
	Messages [numClasses]uint64
	Flits    uint64
	HopFlits uint64 // flits × hops traversed (energy proxy)
}

// Ring is a bidirectional ring with Stops stations (cores + LLC
// slices). Latency of a traversal is HopLat × hop distance.
type Ring struct {
	Stops  int   //catch:nosnap topology fixed at construction
	HopLat int64 //catch:nosnap topology fixed at construction
	Stats  Stats
}

// New builds a ring with the given number of stops and per-hop latency.
func New(stops int, hopLat int64) *Ring {
	if stops < 2 {
		stops = 2
	}
	if hopLat < 1 {
		hopLat = 1
	}
	return &Ring{Stops: stops, HopLat: hopLat}
}

// hops returns the shortest-path hop count between two stops.
func (r *Ring) hops(src, dst int) int {
	d := src - dst
	if d < 0 {
		d = -d
	}
	if alt := r.Stops - d; alt < d {
		d = alt
	}
	if d == 0 {
		d = 1
	}
	return d
}

// Traverse accounts one message from src to dst and returns its
// latency.
func (r *Ring) Traverse(src, dst int, class MsgClass) int64 {
	h := r.hops(src, dst)
	f := FlitsPerClass[class]
	r.Stats.Messages[class]++
	r.Stats.Flits += f
	r.Stats.HopFlits += f * uint64(h)
	return int64(h) * r.HopLat
}

// RoundTrip accounts a request and its data response and returns the
// combined latency.
func (r *Ring) RoundTrip(src, dst int) int64 {
	lat := r.Traverse(src, dst, MsgRequest)
	lat += r.Traverse(dst, src, MsgData)
	return lat
}

// TotalMessages returns the total message count across classes.
func (r *Ring) TotalMessages() uint64 {
	var t uint64
	for _, m := range r.Stats.Messages {
		t += m
	}
	return t
}
