package interconnect

import "catch/internal/snap"

// Snapshot codec for the ring: the only mutable state is the traffic
// counters (latency is a pure function of hop distance).

// SnapshotTo appends the ring's counters.
func (r *Ring) SnapshotTo(w *snap.Writer) {
	for _, m := range r.Stats.Messages {
		w.U64(m)
	}
	w.U64(r.Stats.Flits)
	w.U64(r.Stats.HopFlits)
}

// RestoreFrom restores counters serialized by SnapshotTo.
func (r *Ring) RestoreFrom(rd *snap.Reader) error {
	for i := range r.Stats.Messages {
		r.Stats.Messages[i] = rd.U64()
	}
	r.Stats.Flits = rd.U64()
	r.Stats.HopFlits = rd.U64()
	return rd.Err()
}
