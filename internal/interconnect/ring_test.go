package interconnect

import "testing"

func TestHopsShortestPath(t *testing.T) {
	r := New(8, 2)
	if h := r.hops(0, 1); h != 1 {
		t.Fatalf("hops(0,1) = %d", h)
	}
	if h := r.hops(0, 7); h != 1 {
		t.Fatalf("hops(0,7) wraps the ring: got %d", h)
	}
	if h := r.hops(0, 4); h != 4 {
		t.Fatalf("hops(0,4) = %d", h)
	}
	if h := r.hops(2, 2); h != 1 {
		t.Fatalf("same-stop traversal should count one hop, got %d", h)
	}
}

func TestTraverseLatencyAndAccounting(t *testing.T) {
	r := New(8, 3)
	lat := r.Traverse(0, 2, MsgRequest)
	if lat != 6 {
		t.Fatalf("2 hops × 3 = %d", lat)
	}
	if r.Stats.Messages[MsgRequest] != 1 || r.Stats.Flits != 1 {
		t.Fatalf("request accounting wrong: %+v", r.Stats)
	}
	r.Traverse(2, 0, MsgData)
	if r.Stats.Flits != 5 { // 1 + 4 flits
		t.Fatalf("data flits wrong: %+v", r.Stats)
	}
	if r.Stats.HopFlits != 1*2+4*2 {
		t.Fatalf("hop-flits wrong: %+v", r.Stats)
	}
}

func TestRoundTrip(t *testing.T) {
	r := New(8, 2)
	lat := r.RoundTrip(0, 4)
	if lat != 16 { // 4 hops each way × 2
		t.Fatalf("round trip latency %d", lat)
	}
	if r.TotalMessages() != 2 {
		t.Fatalf("round trip messages %d", r.TotalMessages())
	}
}

func TestDegenerateRing(t *testing.T) {
	r := New(0, 0)
	if r.Stops < 2 || r.HopLat < 1 {
		t.Fatalf("degenerate ring not clamped: %+v", r)
	}
	if lat := r.Traverse(0, 1, MsgSnoop); lat <= 0 {
		t.Fatalf("degenerate traverse latency %d", lat)
	}
}
