package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strings"
)

// WriteText renders every registered metric in the Prometheus text
// exposition format, in registration order. Series that share a base
// name (labelled variants like `x_total{kind="hit"}`) share one
// HELP/TYPE header, taken from the first registered of them.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, m := range metrics {
		base := m.name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base != lastBase {
			lastBase = base
			if m.help != "" {
				bw.WriteString("# HELP " + base + " " + m.help + "\n")
			}
			bw.WriteString("# TYPE " + base + " " + m.kind.String() + "\n")
		}
		switch {
		case m.hist != nil:
			writeHistogram(bw, m.name, m.hist)
		case m.counter != nil:
			bw.WriteString(m.name + " " + formatValue(float64(m.counter.Value())) + "\n")
		case m.gauge != nil:
			bw.WriteString(m.name + " " + formatValue(float64(m.gauge.Value())) + "\n")
		case m.fn != nil:
			bw.WriteString(m.name + " " + formatValue(m.fn()) + "\n")
		}
	}
	return bw.Flush()
}

// writeHistogram renders the cumulative _bucket/_sum/_count series.
func writeHistogram(bw *bufio.Writer, name string, h *Histogram) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		bw.WriteString(name + `_bucket{le="` + formatValue(b) + `"} ` + formatValue(float64(cum)) + "\n")
	}
	cum += h.counts[len(h.bounds)].Load()
	bw.WriteString(name + `_bucket{le="+Inf"} ` + formatValue(float64(cum)) + "\n")
	sum := h.Sum()
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		sum = 0
	}
	bw.WriteString(name + "_sum " + formatValue(sum) + "\n")
	bw.WriteString(name + "_count " + formatValue(float64(h.count.Load())) + "\n")
}

// Handler serves the registry as an HTTP endpoint (GET /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A write failure means the scraper disconnected mid-response;
		// there is nowhere left to report it.
		_ = r.WriteText(w)
	})
}
