// Package telemetry is the simulator's zero-overhead observability
// layer: a typed metrics registry with Prometheus-style text
// exposition, and an opt-in ring-buffered event tracer that emits
// Chrome trace-event JSON (chrome://tracing / Perfetto loadable).
//
// The discipline throughout matches the allocation-free simulation
// kernel it instruments: every metric update is a single atomic
// operation on a pre-registered handle, and a disabled tracer costs
// one predicted branch per event site. Neither path allocates
// (guarded by testing.AllocsPerRun tests).
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricKind is the exposition type of a registered metric.
type MetricKind uint8

// Metric kinds, matching the Prometheus TYPE vocabulary.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing metric handle. All methods are
// safe for concurrent use and nil-safe: an unregistered (nil) handle
// makes every update a cheap no-op, so instrumented code needs no
// "is telemetry on?" plumbing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//catch:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//catch:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer metric handle (current value, may go up
// and down). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//catch:hotpath
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
//
//catch:hotpath
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram metric handle. Buckets are
// cumulative in exposition (Prometheus semantics) but stored as plain
// per-bucket atomic counts so Observe is wait-free. Nil-safe.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf last
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
//
//catch:hotpath
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metric is one registered series.
type metric struct {
	name string
	help string
	kind MetricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc / GaugeFunc
}

// Registry holds pre-registered metrics and renders them in
// registration order (deterministic exposition, golden-testable).
// Registration takes a lock; updates through the returned handles are
// lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Metric names: a Prometheus identifier, optionally with a literal
// baked-in label set (the registry treats `name{k="v"}` as an opaque
// series name; series sharing a base name share one HELP/TYPE header).
var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})?$`)

func (r *Registry) register(m *metric) {
	if !nameRe.MatchString(m.name) {
		panic("telemetry: invalid metric name " + m.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("telemetry: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter handle.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// Histogram registers and returns a histogram handle with the given
// ascending upper bucket bounds (an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must ascend: " + name)
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from f at
// exposition time (for surfacing counters owned by other subsystems).
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(&metric{name: name, help: help, kind: KindCounter, fn: f})
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(&metric{name: name, help: help, kind: KindGauge, fn: f})
}

// formatValue renders a sample the way Prometheus does: integers
// without a decimal point, everything else in shortest-round-trip form.
func formatValue(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
