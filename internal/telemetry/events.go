package telemetry

// Category groups trace events into the streams a viewer can filter
// on. Values double as bit positions in a CatMask.
type Category uint8

// Event categories.
const (
	CatPipeline Category = iota // per-instruction D/E/W/C timing, mispredicts, code stalls
	CatCache                    // demand loads/stores/fetches with serving level
	CatTact                     // TACT train/trigger/prefetch/timeliness
	CatCritPath                 // critical-path walks and their enumerated nodes
	numCategories
)

var catNames = [numCategories]string{"pipeline", "cache", "tact", "critpath"}

// String names the category.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "unknown"
}

// CatMask selects which categories a tracer records.
type CatMask uint8

// AllCategories records everything.
const AllCategories CatMask = 1<<numCategories - 1

// Bit returns the mask bit for one category.
func (c Category) Bit() CatMask { return 1 << c }

// EventType identifies one kind of trace event.
type EventType uint8

// Event types. The A1/A2/A3 argument meanings per type are documented
// inline and rendered by the Chrome-trace writer.
const (
	EvInstr        EventType = iota // pipeline: A1=pc A2=seq A3=PackInstr(op, level, E-D, W-E); TS=D Dur=C-D
	EvMispredict                    // pipeline: A1=pc; TS=W (re-steer issue point)
	EvCodeStall                     // pipeline: A1=line addr; TS=fetch Dur=stall cycles
	EvLoad                          // cache: A1=addr A2=level; TS=issue Dur=latency
	EvStore                         // cache: A1=addr A2=1 if L1 hit; TS=commit
	EvFetch                         // cache: A1=line addr A2=level; TS=issue Dur=latency
	EvTactPrefetch                  // tact: A1=addr A2=result level (0=dropped-present, see level names); TS=issue
	EvTactTrain                     // tact: A1=target pc A2=trigger/feeder pc A3=component
	EvTactTrigger                   // tact: A1=trigger pc A2=prefetch addr A3=component
	EvTactUse                       // tact: A1=line addr A2=per-mille of source latency saved A3=origin latency
	EvPathNode                      // critpath: A1=pc A2=seq A3=PackPathMeta(...); TS=node cost
	EvWalkEnd                       // critpath: A1=nodes on path A2=path loads A3=recorded loads; TS=walk trigger
	numEventTypes
)

var evNames = [numEventTypes]string{
	"instr", "mispredict", "code-stall",
	"load", "store", "fetch",
	"tact-prefetch", "tact-train", "tact-trigger", "tact-use",
	"path-node", "walk",
}

// String names the event type.
func (e EventType) String() string {
	if int(e) < len(evNames) {
		return evNames[e]
	}
	return "unknown"
}

// TACT component identifiers (the A3 argument of EvTactTrain /
// EvTactTrigger).
const (
	CompDist1 uint64 = iota + 1
	CompDeep
	CompCross
	CompFeeder
	CompCode
)

var compNames = [...]string{"?", "dist1", "deep", "cross", "feeder", "code"}

// CompName names a TACT component id.
func CompName(c uint64) string {
	if c < uint64(len(compNames)) {
		return compNames[c]
	}
	return "?"
}

// Serving-level names, matching cache.HitLevel values (0=none, 1=L1,
// 2=L2, 3=LLC, 4=MEM). telemetry stays import-free of the cache
// package, so the correspondence is by convention and pinned by a test.
var levelNames = [...]string{"none", "L1", "L2", "LLC", "MEM"}

// LevelName names a serving level.
func LevelName(l uint64) string {
	if l < uint64(len(levelNames)) {
		return levelNames[l]
	}
	return "?"
}

// Critical-path node kinds (the paper's D/E/C DDG nodes).
const (
	PathD uint8 = iota
	PathE
	PathC
)

var pathNodeNames = [...]string{"D", "E", "C"}

// Critical-path edge kinds, matching the detector's prev-node encoding
// (fromNone..fromCPrev in internal/criticality).
var edgeNames = [...]string{
	"none",   // path origin
	"d-prev", // D[i] <- D[i-1] dispatch width
	"c-rob",  // D[i] <- C[i-ROB] ROB depth
	"e-bad",  // D[i] <- E of mispredicted branch
	"d-self", // E[i] <- D[i] rename
	"e-dep",  // E[i] <- E[j] data/memory dependency
	"e-self", // C[i] <- E[i] completion
	"c-prev", // C[i] <- C[i-1] commit width
}

// EdgeName names a critical-path edge kind.
func EdgeName(e uint8) string {
	if int(e) < len(edgeNames) {
		return edgeNames[e]
	}
	return "?"
}

// PackInstr packs the per-instruction detail word of an EvInstr event:
// op class, serving level, and the D→E and E→W stage latencies
// (saturated to 16 bits each).
func PackInstr(op, level uint8, dToE, eToW int64) uint64 {
	return uint64(op) | uint64(level)<<8 | clamp16(dToE)<<16 | clamp16(eToW)<<32
}

// UnpackInstr reverses PackInstr.
func UnpackInstr(w uint64) (op, level uint8, dToE, eToW int64) {
	return uint8(w), uint8(w >> 8), int64(w >> 16 & 0xffff), int64(w >> 32 & 0xffff)
}

func clamp16(x int64) uint64 {
	if x < 0 {
		return 0
	}
	if x > 0xffff {
		return 0xffff
	}
	return uint64(x)
}

// PackPathMeta packs an EvPathNode's metadata: node kind (D/E/C), the
// incoming edge kind, whether the instruction is a load, and its
// serving level.
func PackPathMeta(node, edge uint8, isLoad bool, level uint8) uint64 {
	w := uint64(node) | uint64(edge)<<8 | uint64(level)<<24
	if isLoad {
		w |= 1 << 16
	}
	return w
}

// UnpackPathMeta reverses PackPathMeta.
func UnpackPathMeta(w uint64) (node, edge uint8, isLoad bool, level uint8) {
	return uint8(w), uint8(w >> 8), w>>16&1 != 0, uint8(w >> 24)
}
