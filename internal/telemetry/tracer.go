package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// Event is one fixed-size trace record. TS and Dur are in simulated
// cycles (rendered as microseconds in Chrome trace JSON: 1 cycle =
// 1us, so viewer timelines read directly in cycles). A1..A3 are
// event-type-specific arguments (see the EventType docs).
type Event struct {
	TS         int64
	Dur        int64
	A1, A2, A3 uint64
	Cat        Category
	Type       EventType
	TID        uint8 // simulated core id
}

// TracerConfig sizes a Tracer.
type TracerConfig struct {
	// BufferEvents is the ring capacity, rounded up to a power of two;
	// <=0 means 1<<16. When the ring wraps, the oldest events are
	// overwritten (the trace keeps the most recent window).
	BufferEvents int
	// SampleEvery keeps one in N high-frequency events (per-instruction
	// pipeline records and demand cache accesses); <=1 keeps all.
	// Low-frequency events (TACT, critical-path) are never sampled.
	SampleEvery uint64
	// Categories selects what to record; 0 means AllCategories.
	Categories CatMask
}

// Tracer is a single-writer, ring-buffered event sink. It is wired
// into the simulator's hot paths, so its cost discipline is strict:
//
//   - nil or disabled tracer: every event site is one predicted branch
//     (Enabled() == false short-circuits before any Event is built);
//   - enabled tracer: Emit writes one fixed-size record into a
//     pre-allocated ring — no locks, no allocation.
//
// Like the core.System it observes, a Tracer is not goroutine-safe:
// attach one tracer per system.
type Tracer struct {
	on    bool
	mask  CatMask
	every uint64
	n     uint64

	buf  []Event
	ring uint64 // len(buf)-1, buf length is a power of two
	head uint64 // total events emitted (monotonic)
}

// NewTracer builds an enabled tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	n := cfg.BufferEvents
	if n <= 0 {
		n = 1 << 16
	}
	size := 1
	for size < n {
		size <<= 1
	}
	every := cfg.SampleEvery
	if every < 1 {
		every = 1
	}
	mask := cfg.Categories
	if mask == 0 {
		mask = AllCategories
	}
	return &Tracer{on: true, mask: mask, every: every, buf: make([]Event, size), ring: uint64(size - 1)}
}

// Enabled reports whether the tracer records anything. It is the one
// branch a disabled tracer costs on the hot path: call it before
// building an Event.
//
//catch:hotpath
func (t *Tracer) Enabled() bool { return t != nil && t.on }

// SetEnabled pauses or resumes recording.
func (t *Tracer) SetEnabled(on bool) { t.on = on }

// Sampled reports whether the current high-frequency event falls on
// the sampling grid (one in SampleEvery). Call only when Enabled.
//
//catch:hotpath
func (t *Tracer) Sampled() bool {
	t.n++
	if t.n >= t.every {
		t.n = 0
		return true
	}
	return false
}

// Emit records one event (dropped if its category is masked out).
//
//catch:hotpath
func (t *Tracer) Emit(e Event) {
	if t.mask&e.Cat.Bit() == 0 {
		return
	}
	t.buf[t.head&t.ring] = e
	t.head++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.head < uint64(len(t.buf)) {
		return int(t.head)
	}
	return len(t.buf)
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.head < uint64(len(t.buf)) {
		return 0
	}
	return t.head - uint64(len(t.buf))
}

// Events returns the retained events, oldest first. It allocates and
// is meant for post-run rendering, not the hot path.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	n := uint64(t.Len())
	out := make([]Event, 0, n)
	for i := t.head - n; i < t.head; i++ {
		out = append(out, t.buf[i&t.ring])
	}
	return out
}

// WriteChromeTrace renders the retained events as Chrome trace-event
// JSON (the object form, with metadata), loadable in chrome://tracing
// and Perfetto. Durations render as complete ("X") events, everything
// else as instants ("i").
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"source\":\"catchsim\",\"cyclePerUs\":1,\"sampleEvery\":%d,\"dropped\":%d},\n\"traceEvents\":[\n", t.every, t.Dropped())
	bw.WriteString(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"catch simulation"}}`)
	for _, e := range t.Events() {
		bw.WriteString(",\n")
		writeChromeEvent(bw, &e)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeChromeEvent renders one event. All names come from fixed
// tables, so no JSON escaping is needed.
func writeChromeEvent(bw *bufio.Writer, e *Event) {
	ph := "i"
	if e.Dur > 0 {
		ph = "X"
	}
	fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":%q,"pid":0,"tid":%d,"ts":%d`,
		e.Type.String(), e.Cat.String(), ph, e.TID, e.TS)
	if e.Dur > 0 {
		fmt.Fprintf(bw, `,"dur":%d`, e.Dur)
	} else {
		bw.WriteString(`,"s":"t"`)
	}
	bw.WriteString(`,"args":{`)
	writeChromeArgs(bw, e)
	bw.WriteString("}}")
}

// writeChromeArgs renders the per-type argument object.
func writeChromeArgs(bw *bufio.Writer, e *Event) {
	switch e.Type {
	case EvInstr:
		op, level, dToE, eToW := UnpackInstr(e.A3)
		fmt.Fprintf(bw, `"pc":"0x%x","seq":%d,"op":%d,"level":%q,"dToE":%d,"eToW":%d`,
			e.A1, e.A2, op, LevelName(uint64(level)), dToE, eToW)
	case EvMispredict:
		fmt.Fprintf(bw, `"pc":"0x%x"`, e.A1)
	case EvCodeStall:
		fmt.Fprintf(bw, `"line":"0x%x"`, e.A1)
	case EvLoad, EvFetch:
		fmt.Fprintf(bw, `"addr":"0x%x","level":%q`, e.A1, LevelName(e.A2))
	case EvStore:
		fmt.Fprintf(bw, `"addr":"0x%x","l1hit":%t`, e.A1, e.A2 != 0)
	case EvTactPrefetch:
		fmt.Fprintf(bw, `"addr":"0x%x","filledFrom":%q`, e.A1, LevelName(e.A2))
	case EvTactTrain:
		fmt.Fprintf(bw, `"targetPC":"0x%x","sourcePC":"0x%x","component":%q`, e.A1, e.A2, CompName(e.A3))
	case EvTactTrigger:
		fmt.Fprintf(bw, `"triggerPC":"0x%x","addr":"0x%x","component":%q`, e.A1, e.A2, CompName(e.A3))
	case EvTactUse:
		fmt.Fprintf(bw, `"addr":"0x%x","savedPerMille":%d,"originLat":%d`, e.A1, e.A2, e.A3)
	case EvPathNode:
		node, edge, isLoad, level := UnpackPathMeta(e.A3)
		fmt.Fprintf(bw, `"pc":"0x%x","seq":%d,"node":%q,"edge":%q,"load":%t,"level":%q`,
			e.A1, e.A2, PathNodeName(node), EdgeName(edge), isLoad, LevelName(uint64(level)))
	case EvWalkEnd:
		fmt.Fprintf(bw, `"nodes":%d,"pathLoads":%d,"recorded":%d`, e.A1, e.A2, e.A3)
	default:
		fmt.Fprintf(bw, `"a1":%d,"a2":%d,"a3":%d`, e.A1, e.A2, e.A3)
	}
}
