package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// emitOneOfEach pushes one event of every type through the tracer.
func emitOneOfEach(tr *Tracer) {
	tr.Emit(Event{Cat: CatPipeline, Type: EvInstr, TS: 10, Dur: 25, A1: 0x400, A2: 1, A3: PackInstr(6, 2, 2, 14)})
	tr.Emit(Event{Cat: CatPipeline, Type: EvMispredict, TS: 30, A1: 0x404})
	tr.Emit(Event{Cat: CatPipeline, Type: EvCodeStall, TS: 31, Dur: 12, A1: 0x440})
	tr.Emit(Event{Cat: CatCache, Type: EvLoad, TS: 12, Dur: 14, A1: 0x1000, A2: 2})
	tr.Emit(Event{Cat: CatCache, Type: EvStore, TS: 13, A1: 0x1040, A2: 1})
	tr.Emit(Event{Cat: CatCache, Type: EvFetch, TS: 14, Dur: 5, A1: 0x400, A2: 1})
	tr.Emit(Event{Cat: CatTact, Type: EvTactPrefetch, TS: 15, A1: 0x1080, A2: 3})
	tr.Emit(Event{Cat: CatTact, Type: EvTactTrain, TS: 16, A1: 0x400, A2: 0x3f0, A3: CompCross})
	tr.Emit(Event{Cat: CatTact, Type: EvTactTrigger, TS: 17, A1: 0x3f0, A2: 0x10c0, A3: CompFeeder})
	tr.Emit(Event{Cat: CatTact, Type: EvTactUse, TS: 18, A1: 0x1080, A2: 900, A3: 30})
	tr.Emit(Event{Cat: CatCritPath, Type: EvPathNode, TS: 100, A1: 0x400, A2: 41, A3: PackPathMeta(PathE, 5, true, 3)})
	tr.Emit(Event{Cat: CatCritPath, Type: EvWalkEnd, TS: 101, A1: 1, A2: 1, A3: 1})
}

// TestChromeTraceIsValidJSON renders one of every event type and
// requires the output to parse as JSON with the pipeline, cache, tact
// and critpath categories all present — the acceptance shape for
// -trace output.
func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(TracerConfig{BufferEvents: 64})
	emitOneOfEach(tr)

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	cats := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if c, ok := e["cat"].(string); ok {
			cats[c] = true
		}
	}
	for _, want := range []string{"pipeline", "cache", "tact", "critpath"} {
		if !cats[want] {
			t.Errorf("trace missing category %q (have %v)", want, cats)
		}
	}
	// Metadata event + 12 records.
	if got := len(doc.TraceEvents); got != 13 {
		t.Errorf("got %d trace events, want 13", got)
	}
}

// TestRingWrapKeepsNewest: overflowing the ring must retain the most
// recent events and count the overwritten ones.
func TestRingWrapKeepsNewest(t *testing.T) {
	tr := NewTracer(TracerConfig{BufferEvents: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cat: CatCache, Type: EvLoad, TS: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.TS != want {
			t.Errorf("event %d TS = %d, want %d", i, e.TS, want)
		}
	}
}

// TestCategoryMaskFilters: masked-out categories must not reach the
// ring (the -dump-critpath mode relies on this).
func TestCategoryMaskFilters(t *testing.T) {
	tr := NewTracer(TracerConfig{BufferEvents: 16, Categories: CatCritPath.Bit()})
	emitOneOfEach(tr)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (critpath only)", tr.Len())
	}
	for _, e := range tr.Events() {
		if e.Cat != CatCritPath {
			t.Errorf("leaked category %v", e.Cat)
		}
	}
}

// TestSampling: Sampled keeps exactly one in N.
func TestSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 4})
	kept := 0
	for i := 0; i < 100; i++ {
		if tr.Sampled() {
			kept++
		}
	}
	if kept != 25 {
		t.Errorf("kept %d of 100 with SampleEvery=4, want 25", kept)
	}
}

// TestDisabledAndNilTracer: Enabled must short-circuit for both.
func TestDisabledAndNilTracer(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if nilTr.Len() != 0 || nilTr.Dropped() != 0 || nilTr.Events() != nil {
		t.Error("nil tracer must read as empty")
	}
	tr := NewTracer(TracerConfig{})
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Error("disabled tracer reports enabled")
	}
}

// TestCritPathTable renders a walk and spot-checks the table.
func TestCritPathTable(t *testing.T) {
	tr := NewTracer(TracerConfig{BufferEvents: 16})
	tr.Emit(Event{Cat: CatCritPath, Type: EvPathNode, TS: 200, A1: 0x404, A2: 9, A3: PackPathMeta(PathC, 7, false, 0)})
	tr.Emit(Event{Cat: CatCritPath, Type: EvPathNode, TS: 180, A1: 0x400, A2: 8, A3: PackPathMeta(PathE, 5, true, 3)})
	tr.Emit(Event{Cat: CatCritPath, Type: EvWalkEnd, TS: 201, A1: 2, A2: 1, A3: 1})
	var sb strings.Builder
	if err := WriteCritPathTable(&sb, tr.Events()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"walk 1", "2 path nodes", "c-prev", "e-dep", "LLC", "0x400"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
