package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentCounterUpdates hammers one counter from many
// goroutines; run under -race this also proves the update path is
// data-race-free.
func TestConcurrentCounterUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "test")
	g := r.Gauge("t_gauge", "test")
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

// TestConcurrentHistogramUpdates checks Observe under concurrency:
// count, bucket sums and the CAS-accumulated float sum must all agree.
func TestConcurrentHistogramUpdates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", 0.5, 1.5, 2.5)
	const workers, per = 8, 5_000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1.0) // bucket le=1.5
				h.Observe(3.0) // +Inf bucket
			}
		}()
	}
	wg.Wait()
	const n = workers * per
	if got := h.Count(); got != 2*n {
		t.Errorf("count = %d, want %d", got, 2*n)
	}
	if got, want := h.Sum(), float64(4*n); math.Abs(got-want) > 1e-6 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if got := h.counts[1].Load(); got != n {
		t.Errorf("bucket le=1.5 = %d, want %d", got, n)
	}
	if got := h.counts[3].Load(); got != n {
		t.Errorf("+Inf bucket = %d, want %d", got, n)
	}
}

// TestNilHandlesAreNoOps: unregistered handles must be safe to update
// so instrumented code needs no telemetry-enabled branches.
func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
}

// TestRegistryRejectsDuplicatesAndBadNames pins registration-time
// programmer-error checks.
func TestRegistryRejectsDuplicatesAndBadNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	mustPanic(t, "duplicate", func() { r.Counter("ok_total", "") })
	mustPanic(t, "bad name", func() { r.Counter("0bad", "") })
	mustPanic(t, "unsorted bounds", func() { r.Histogram("h", "", 2, 1) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

// TestLevelNamesMatchCacheHitLevels pins the by-convention mapping to
// cache.HitLevel (telemetry deliberately does not import the cache
// package; this test is the contract).
func TestLevelNamesMatchCacheHitLevels(t *testing.T) {
	want := []string{"none", "L1", "L2", "LLC", "MEM"}
	for i, w := range want {
		if got := LevelName(uint64(i)); got != w {
			t.Errorf("LevelName(%d) = %q, want %q", i, got, w)
		}
	}
}

// TestPackRoundTrips pins the packed argument words.
func TestPackRoundTrips(t *testing.T) {
	op, level, dToE, eToW := UnpackInstr(PackInstr(7, 3, 123, 70000))
	if op != 7 || level != 3 || dToE != 123 || eToW != 0xffff {
		t.Errorf("instr round trip: op=%d level=%d dToE=%d eToW=%d", op, level, dToE, eToW)
	}
	node, edge, isLoad, lvl := UnpackPathMeta(PackPathMeta(PathE, 5, true, 3))
	if node != PathE || edge != 5 || !isLoad || lvl != 3 {
		t.Errorf("path meta round trip: node=%d edge=%d load=%t level=%d", node, edge, isLoad, lvl)
	}
}
