package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// PathNodeName names a critical-path node kind (D/E/C).
func PathNodeName(n uint8) string {
	if int(n) < len(pathNodeNames) {
		return pathNodeNames[n]
	}
	return "?"
}

// WriteCritPathTable renders the critical-path walks retained in the
// tracer as a readable table. Each walk lists its enumerated nodes in
// walk order — the detector traverses prev-node pointers, so nodes run
// from the youngest commit backwards through the dependency graph.
// Only walks whose EvWalkEnd record survived in the ring are printed
// (a wrapped ring keeps the most recent walks).
func WriteCritPathTable(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)

	var nodes []Event // nodes of the walk currently being accumulated
	walks := 0
	for _, e := range events {
		if e.Cat != CatCritPath {
			continue
		}
		switch e.Type {
		case EvPathNode:
			nodes = append(nodes, e)
		case EvWalkEnd:
			walks++
			fmt.Fprintf(bw, "walk %d (core %d): %d path nodes, %d path loads, %d recorded critical\n",
				walks, e.TID, e.A1, e.A2, e.A3)
			if uint64(len(nodes)) == e.A1 {
				fmt.Fprintf(bw, "  %-4s %-5s %-18s %10s  %-7s %-5s %s\n",
					"node", "seq", "pc", "cost", "edge", "load", "level")
				for _, n := range nodes {
					node, edge, isLoad, level := UnpackPathMeta(n.A3)
					load := "-"
					if isLoad {
						load = "yes"
					}
					fmt.Fprintf(bw, "  %-4s %-5d 0x%-16x %10d  %-7s %-5s %s\n",
						PathNodeName(node), n.A2, n.A1, n.TS, EdgeName(edge), load, LevelName(uint64(level)))
				}
			} else {
				fmt.Fprintf(bw, "  (node records truncated by the trace ring: %d of %d retained)\n",
					len(nodes), e.A1)
			}
			fmt.Fprintln(bw)
			nodes = nodes[:0]
		}
	}
	if walks == 0 {
		fmt.Fprintln(bw, "no critical-path walks recorded (is the criticality detector enabled in this config?)")
	}
	return bw.Flush()
}
