package telemetry

import "testing"

// The telemetry layer instruments the allocation-free simulation
// kernel (PR 2), so its own hot paths carry the same guard: metric
// updates and tracer emission must never allocate, whether the tracer
// is nil, attached-but-disabled, or enabled.

// TestMetricUpdatesAllocFree guards counter/gauge/histogram updates.
func TestMetricUpdatesAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", 0.01, 0.1, 1)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-2)
		h.Observe(0.05)
	}); allocs != 0 {
		t.Errorf("metric updates: %v allocs/op, want 0", allocs)
	}
}

// TestDisabledTracerAllocFree guards the disabled-tracer event site —
// the exact pattern instrumented code uses: one Enabled() branch, the
// Event never built.
func TestDisabledTracerAllocFree(t *testing.T) {
	emitSite := func(tr *Tracer) {
		if tr.Enabled() {
			tr.Emit(Event{Cat: CatCache, Type: EvLoad, TS: 1, Dur: 2, A1: 0x1000, A2: 2})
		}
	}
	var nilTr *Tracer
	if allocs := testing.AllocsPerRun(100, func() { emitSite(nilTr) }); allocs != 0 {
		t.Errorf("nil tracer: %v allocs/op, want 0", allocs)
	}
	off := NewTracer(TracerConfig{BufferEvents: 16})
	off.SetEnabled(false)
	if allocs := testing.AllocsPerRun(100, func() { emitSite(off) }); allocs != 0 {
		t.Errorf("disabled tracer: %v allocs/op, want 0", allocs)
	}
}

// TestEnabledTracerAllocFree: even recording, Emit writes into the
// pre-allocated ring and must not allocate (wrapping included).
func TestEnabledTracerAllocFree(t *testing.T) {
	tr := NewTracer(TracerConfig{BufferEvents: 64, SampleEvery: 2})
	if allocs := testing.AllocsPerRun(100, func() {
		if tr.Enabled() && tr.Sampled() {
			tr.Emit(Event{Cat: CatPipeline, Type: EvInstr, TS: 5, Dur: 9, A1: 0x400, A2: 1, A3: PackInstr(1, 1, 2, 3)})
		}
		if tr.Enabled() {
			tr.Emit(Event{Cat: CatTact, Type: EvTactTrigger, A1: 0x3f0, A2: 0x1000, A3: CompCross})
		}
	}); allocs != 0 {
		t.Errorf("enabled tracer: %v allocs/op, want 0", allocs)
	}
}
