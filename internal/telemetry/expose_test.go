package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text format the
// registry emits: ordering (registration order), HELP/TYPE header
// sharing for labelled series, integer rendering, and the cumulative
// histogram encoding.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("catch_jobs_completed_total", "Jobs completed successfully.")
	r.CounterFunc(`catch_cache_requests_total{kind="hit"}`, "Result-cache requests by outcome.", func() float64 { return 7 })
	r.CounterFunc(`catch_cache_requests_total{kind="miss"}`, "", func() float64 { return 2 })
	inflight := r.Gauge("catch_jobs_inflight", "Jobs currently executing.")
	lat := r.Histogram("catch_job_seconds", "Per-job wall time.", 0.01, 0.1, 1)

	jobs.Add(3)
	inflight.Set(2)
	lat.Observe(0.004)
	lat.Observe(0.05)
	lat.Observe(0.05)
	lat.Observe(4)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP catch_jobs_completed_total Jobs completed successfully.
# TYPE catch_jobs_completed_total counter
catch_jobs_completed_total 3
# HELP catch_cache_requests_total Result-cache requests by outcome.
# TYPE catch_cache_requests_total counter
catch_cache_requests_total{kind="hit"} 7
catch_cache_requests_total{kind="miss"} 2
# HELP catch_jobs_inflight Jobs currently executing.
# TYPE catch_jobs_inflight gauge
catch_jobs_inflight 2
# HELP catch_job_seconds Per-job wall time.
# TYPE catch_job_seconds histogram
catch_job_seconds_bucket{le="0.01"} 1
catch_job_seconds_bucket{le="0.1"} 3
catch_job_seconds_bucket{le="1"} 3
catch_job_seconds_bucket{le="+Inf"} 4
catch_job_seconds_sum 4.104
catch_job_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHandlerServesText checks the HTTP wrapper and content type.
func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "x").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}
