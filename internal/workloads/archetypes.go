// Package workloads defines the 70 single-thread workloads of the
// paper's Table II as synthetic analogues, plus the 60 four-way
// multi-programmed mixes (§V). Each workload is a deterministic
// weighted mix of trace kernels whose working sets are sized against
// the paper's cache hierarchy (32KB L1, 1MB L2, 5.5MB LLC) so that the
// hit-rate and criticality structure lands in the regimes the paper
// reports.
package workloads

import "catch/internal/trace"

// Register banks: kernels within one workload get disjoint
// architectural registers so interleaving creates no false
// dependencies.
var regBank = [4][4]int8{
	{0, 1, 2, 3},
	{4, 5, 6, 7},
	{8, 9, 10, 11},
	{12, 13, 14, 15},
}

const (
	kb = 1024
	mb = 1024 * kb
)

func seedOf(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

func wl(name, cat string, build trace.BuildFunc) trace.Workload {
	return trace.Workload{WName: name, WCategory: cat, Seed: seedOf(name), Build: build}
}

// --- kernel constructors -------------------------------------------------

func addStream(b *trace.Builder, bank int, w int, ws, stride uint64, fp bool) {
	b.Add(w, &trace.StreamKernel{
		Code: b.Space.Code(256), Data: b.Space.Data(ws),
		R: regBank[bank], Stride: stride, Block: 24, FP: fp,
	})
}

func addWriteStream(b *trace.Builder, bank int, w int, ws uint64) {
	b.Add(w, &trace.WriteStreamKernel{
		Code: b.Space.Code(192), Data: b.Space.Data(ws),
		R: regBank[bank], Stride: 64, Block: 16,
	})
}

func addChase(b *trace.Builder, bank int, w int, ws uint64, work int) {
	k := &trace.PointerChaseKernel{
		Code: b.Space.Code(256), Data: b.Space.Data(ws),
		R: regBank[bank], Block: 4, Work: work,
	}
	k.InitChase(b.RNG)
	b.AddValues(k.Values())
	b.MarkPrewarm(k.Data)
	b.Add(w, k)
}

func addGather(b *trace.Builder, bank int, w int, idxWS, tgtWS uint64, work int, mispred float64) {
	k := &trace.IndexedGatherKernel{
		Code: b.Space.Code(384), Index: b.Space.Data(idxWS), Target: b.Space.Data(tgtWS),
		R: regBank[bank], Block: 12, Work: work, MispredP: mispred, SeedVal: b.RNG.Uint64(),
	}
	b.AddValues(k.Values())
	b.MarkPrewarm(k.Index)
	b.MarkPrewarm(k.Target)
	b.Add(w, k)
}

func addCross(b *trace.Builder, bank int, w int, ws, delta uint64, gap, work int) {
	k := &trace.CrossPairKernel{
		Code: b.Space.Code(512), Data: b.Space.Data(ws),
		R: regBank[bank], Delta: delta, Gap: gap, Work: work, Block: 3,
		Seed: b.RNG.Uint64(),
	}
	b.MarkPrewarm(k.Data)
	b.Add(w, k)
}

func addHash(b *trace.Builder, bank int, w int, ws uint64, work int, mispred float64) {
	k := &trace.HashProbeKernel{
		Code: b.Space.Code(256), Data: b.Space.Data(ws),
		R: regBank[bank], Block: 10, Work: work,
		MispredP: mispred, BranchFrac: 0.5, Seed: b.RNG.Uint64(),
	}
	b.MarkPrewarm(k.Data)
	b.Add(w, k)
}

func addStencil(b *trace.Builder, bank int, w int, ws uint64) {
	k := &trace.StencilKernel{
		Code: b.Space.Code(256),
		A:    b.Space.Data(ws), B: b.Space.Data(ws), C: b.Space.Data(ws),
		R: regBank[bank], Block: 12,
	}
	b.MarkPrewarm(k.A)
	b.MarkPrewarm(k.B)
	b.Add(w, k)
}

func addGEMM(b *trace.Builder, bank int, w int, tile uint64) {
	b.Add(w, &trace.GEMMKernel{
		Code: b.Space.Code(256), A: b.Space.Data(tile), B: b.Space.Data(tile * 3),
		R: regBank[bank], Block: 12,
	})
}

func addBTree(b *trace.Builder, bank int, w int, levels []uint64, work int) {
	k := &trace.BTreeKernel{
		Code: b.Space.Code(512), R: regBank[bank],
		Block: 2, Work: work, Seed: b.RNG.Uint64(),
	}
	for _, sz := range levels {
		reg := b.Space.Data(sz)
		k.Levels = append(k.Levels, reg)
		b.MarkPrewarm(reg)
	}
	b.AddValues(k.Values())
	b.Add(w, k)
}

func addCode(b *trace.Builder, bank int, w int, codeKB uint64, funcs, funcLen int) {
	b.Add(w, &trace.CodeFootprintKernel{
		Code: b.Space.Code(codeKB * kb), Locals: b.Space.Data(6 * kb),
		R: regBank[bank], Funcs: funcs, FuncLen: funcLen, Succs: 2,
		LoadFrac: 0.2, Seed: b.RNG.Uint64(),
	})
}

func addBranchy(b *trace.Builder, bank int, w int, ws uint64, mispred float64) {
	b.Add(w, &trace.BranchyKernel{
		Code: b.Space.Code(256), Data: b.Space.Data(ws),
		R: regBank[bank], Block: 12, MispredP: mispred, Seed: b.RNG.Uint64(),
	})
}

func addScratch(b *trace.Builder, bank int, w int) {
	b.Add(w, &trace.ScratchKernel{
		Code: b.Space.Code(192), Data: b.Space.Data(4 * kb),
		R: regBank[bank], Block: 12,
	})
}

func addDepChain(b *trace.Builder, bank int, w int, fp bool) {
	b.Add(w, &trace.DepChainKernel{
		Code: b.Space.Code(128), R: regBank[bank], Block: 24, FP: fp,
	})
}

func addILP(b *trace.Builder, bank int, w int) {
	b.Add(w, &trace.ILPKernel{Code: b.Space.Code(128), R: regBank[bank], Block: 16})
}

// addHotSmallBlock adds a serial L2/LLC-resident strided walk with a
// short block, so its exposed-latency chain is a bounded fraction of
// the workload's critical path.
func addHotSmallBlock(b *trace.Builder, bank int, w int, ws uint64, work int) {
	k := &trace.StridedHotKernel{
		Code: b.Space.Code(256), Data: b.Space.Data(ws),
		R: regBank[bank], Stride: 64, Block: 2, Work: work, Serial: true,
	}
	b.MarkPrewarm(k.Data)
	b.Add(w, k)
}

func addHot(b *trace.Builder, bank int, w int, ws, stride uint64, work int, serial bool) {
	k := &trace.StridedHotKernel{
		Code: b.Space.Code(256), Data: b.Space.Data(ws),
		R: regBank[bank], Stride: stride, Block: 16, Work: work, Serial: serial,
	}
	b.MarkPrewarm(k.Data)
	b.Add(w, k)
}

// --- archetype builders ---------------------------------------------------

// hotL2 is dominated by a strided walk over an L2-resident set whose
// loads feed dependent work: critical L2 hits, deep-self coverable.
// This is the paper's hmmer-like big noL2 loser that CATCH recovers.
func hotL2(ws uint64, work int) trace.BuildFunc {
	return func(b *trace.Builder) {
		addHot(b, 0, 5, ws, 64, work, true)
		addILP(b, 1, 2)
		addScratch(b, 3, 1)
		addBranchy(b, 2, 1, 6*kb, 0.03)
	}
}

// gatherCritical is an index-driven gather over a large set: the
// classic feeder pattern (mcf-like).
func gatherCritical(idxWS, tgtWS uint64, work int) trace.BuildFunc {
	return func(b *trace.Builder) {
		addGather(b, 0, 5, idxWS, tgtWS, work, 0.12)
		addStream(b, 1, 1, 256*kb, 64, false)
		addBranchy(b, 2, 1, 6*kb, 0.05)
		addDepChain(b, 3, 1, false)
	}
}

// chaseCritical is pointer-chase dominated: critical loads no
// prefetcher covers (namd/gromacs-like behaviour under CATCH).
func chaseCritical(ws uint64, work int, fp bool) trace.BuildFunc {
	return func(b *trace.Builder) {
		addChase(b, 0, 1, ws, work)
		if fp {
			addDepChain(b, 1, 3, true)
			addStencil(b, 2, 2, 128*kb)
			addGEMM(b, 3, 2, 6*kb)
		} else {
			addILP(b, 1, 3)
			addStream(b, 2, 2, 128*kb, 64, false)
			addHot(b, 3, 2, 8*kb, 64, 2, true)
		}
	}
}

// crossStruct visits structs spread over pages: header then payload at
// a fixed delta (TACT-Cross pattern).
func crossStruct(ws, delta uint64, gap, work int) trace.BuildFunc {
	return func(b *trace.Builder) {
		addCross(b, 0, 2, ws, delta, gap, work)
		addHot(b, 1, 2, 8*kb, 64, 2, true)
		addDepChain(b, 2, 3, false)
		addStream(b, 3, 1, 128*kb, 64, false)
	}
}

// streamHeavy is bandwidth-style streaming with little criticality in
// the on-die hierarchy (libquantum/lbm-like).
func streamHeavy(ws uint64, fp bool) trace.BuildFunc {
	return func(b *trace.Builder) {
		addStream(b, 0, 5, ws, 64, fp)
		addWriteStream(b, 1, 2, ws/2)
		addDepChain(b, 2, 1, fp)
	}
}

// stencilFP is an HPC stencil sweep with FP pipelines.
func stencilFP(ws uint64) trace.BuildFunc {
	return func(b *trace.Builder) {
		addStencil(b, 0, 5, ws)
		addStream(b, 1, 2, ws, 64, true)
		addGEMM(b, 2, 1, 6*kb)
	}
}

// computeFP is L1-resident FP compute (gamess/calculix-like).
func computeFP() trace.BuildFunc {
	return func(b *trace.Builder) {
		addGEMM(b, 0, 4, 6*kb)
		addDepChain(b, 1, 2, true)
		addHotSmallBlock(b, 2, 1, 192*kb, 3)
		addScratch(b, 3, 1)
	}
}

// computeInt is integer compute with moderate branches and an L2-ish
// working set (bzip2/gobmk/sjeng-like).
func computeInt(ws uint64, mispred float64) trace.BuildFunc {
	return func(b *trace.Builder) {
		addDepChain(b, 0, 3, false)
		addBranchy(b, 1, 3, 6*kb, mispred)
		addHot(b, 2, 3, 8*kb, 64, 3, true) // L1-resident inner loop
		addHotSmallBlock(b, 3, 1, ws, 3)   // occasional L2 excursions
	}
}

// hashLLC probes an LLC-resident table with unpredictable addresses.
func hashLLC(ws uint64, work int, mispred float64) trace.BuildFunc {
	return func(b *trace.Builder) {
		addHash(b, 0, 4, ws, work, mispred)
		addStream(b, 1, 2, 512*kb, 64, false)
		addILP(b, 2, 1)
	}
}

// serverMix has a big code footprint, a B-tree descent and branches:
// front-end stalls plus L2/LLC-critical loads (tpcc/specjbb-like).
func serverMix(codeKB uint64, btreeTop, btreeLeaf uint64, mispred float64) trace.BuildFunc {
	return func(b *trace.Builder) {
		addCode(b, 0, 5, codeKB, int(codeKB/3), 96)
		addBTree(b, 1, 1, []uint64{4 * kb, btreeTop, btreeLeaf}, 4)
		addBranchy(b, 2, 4, 6*kb, mispred+0.02)
		addCross(b, 3, 1, 384*kb, 640, 10, 6)
	}
}

// clientMix is a media/productivity blend: streaming, struct access,
// moderate code, some branches.
func clientMix(ws uint64, codeKB uint64) trace.BuildFunc {
	return func(b *trace.Builder) {
		addStream(b, 0, 3, 8*mb, 64, false) // memory streaming phase
		addCross(b, 1, 2, ws, 512, 8, 4)
		addCode(b, 2, 2, codeKB, int(codeKB/3), 96)
		addBranchy(b, 3, 2, 6*kb, 0.04)
	}
}

// manyCritical spreads critical strided loads across many distinct
// static PCs so the 32-entry critical-load table is insufficient
// (povray-like: the paper calls out povray as limited by table
// capacity and leaves better table management as future work).
func manyCritical() trace.BuildFunc {
	return func(b *trace.Builder) {
		// A rotor of 48 serial strided walkers, each with its own load
		// PC and working set: up to 48 PCs compete for table entries.
		var walkers []trace.Kernel
		for i := 0; i < 48; i++ {
			k := &trace.StridedHotKernel{
				Code: b.Space.Code(256), Data: b.Space.Data(uint64(64+8*i) * kb),
				R: regBank[i%3], Stride: 64, Block: 2, Work: 3, Serial: true,
			}
			b.MarkPrewarm(k.Data)
			walkers = append(walkers, k)
		}
		b.Add(6, &rotorKernel{kernels: walkers})
		addILP(b, 3, 2)
		addBranchy(b, 3, 1, 6*kb, 0.05)
	}
}

// rotorKernel cycles through a set of kernels, one per emit, so each
// contributes a distinct hot PC at a low individual frequency.
type rotorKernel struct {
	kernels []trace.Kernel
	next    int
}

// Emit delegates to the next kernel in the rotor.
func (r *rotorKernel) Emit(e *trace.Emitter) {
	r.kernels[r.next].Emit(e)
	r.next = (r.next + 1) % len(r.kernels)
}
