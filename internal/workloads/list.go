package workloads

import "catch/internal/trace"

// Categories used throughout the experiments (paper Table II).
const (
	CatISpec  = "ISPEC"
	CatFSpec  = "FSPEC"
	CatHPC    = "HPC"
	CatServer = "server"
	CatClient = "client"
)

// Categories lists them in the paper's reporting order.
var Categories = []string{"client", "FSPEC", "HPC", "ISPEC", "server"}

// All returns the 70 single-thread workloads.
func All() []trace.Workload {
	return []trace.Workload{
		// ---- SPEC INT 2006 (12) ------------------------------------
		wl("perlbench", CatISpec, computeInt(384*kb, 0.05)),
		wl("bzip2", CatISpec, computeInt(512*kb, 0.04)),
		wl("gcc", CatISpec, serverMix(384, 24*kb, 2*mb, 0.05)),
		wl("mcf", CatISpec, gatherCritical(512*kb, 768*kb, 5)),
		wl("gobmk", CatISpec, computeInt(256*kb, 0.08)),
		wl("hmmer", CatISpec, hotL2(640*kb, 4)),
		wl("sjeng", CatISpec, computeInt(192*kb, 0.07)),
		wl("libquantum", CatISpec, streamHeavy(8*mb, false)),
		wl("h264ref", CatISpec, clientMix(1*mb, 96)),
		wl("omnetpp", CatISpec, chaseCritical(384*kb, 3, false)),
		wl("astar", CatISpec, gatherCritical(256*kb, 768*kb, 3)),
		wl("xalancbmk", CatISpec, crossStruct(768*kb, 576, 10, 5)),

		// ---- SPEC FP 2006 (17) -------------------------------------
		wl("bwaves", CatFSpec, stencilFP(2*mb)),
		wl("gamess", CatFSpec, computeFP()),
		wl("milc", CatFSpec, stencilFP(4*mb)),
		wl("zeusmp", CatFSpec, stencilFP(2560*kb)),
		wl("soplex", CatFSpec, gatherCritical(384*kb, 1*mb, 3)),
		wl("povray", CatFSpec, manyCritical()),
		wl("calculix", CatFSpec, computeFP()),
		wl("gemsfdtd", CatFSpec, stencilFP(3*mb)),
		wl("tonto", CatFSpec, computeFP()),
		wl("lbm", CatFSpec, streamHeavy(12*mb, true)),
		wl("wrf", CatFSpec, stencilFP(2560*kb)),
		wl("sphinx3", CatFSpec, hashLLC(13*mb/2, 4, 0.04)),
		wl("gromacs", CatFSpec, chaseCritical(320*kb, 4, true)),
		wl("cactusadm", CatFSpec, stencilFP(2*mb)),
		wl("leslie3d", CatFSpec, stencilFP(2560*kb)),
		wl("namd", CatFSpec, chaseCritical(224*kb, 5, true)),
		wl("dealii", CatFSpec, crossStruct(640*kb, 448, 8, 5)),

		// ---- HPC (12) -----------------------------------------------
		wl("blackscholes", CatHPC, computeFP()),
		wl("bioinformatics", CatHPC, gatherCritical(384*kb, 1*mb, 3)),
		wl("hplinpack", CatHPC, stencilFP(2560*kb)),
		wl("hpcg", CatHPC, stencilFP(3*mb)),
		wl("minife", CatHPC, stencilFP(2*mb)),
		wl("lulesh", CatHPC, crossStruct(1*mb, 704, 12, 5)),
		wl("stream-triad", CatHPC, streamHeavy(16*mb, true)),
		wl("kmeans", CatHPC, hotL2(512*kb, 5)),
		wl("pagerank", CatHPC, gatherCritical(512*kb, 6*mb, 3)),
		wl("bfs", CatHPC, chaseCritical(768*kb, 2, false)),
		wl("spmv", CatHPC, gatherCritical(384*kb, 1536*kb, 2)),
		wl("fft", CatHPC, hotL2(768*kb, 3)),

		// ---- Server (14) --------------------------------------------
		wl("tpce", CatServer, serverMix(512, 24*kb, 2*mb, 0.05)),
		wl("tpcc", CatServer, serverMix(448, 24*kb, 2*mb, 0.06)),
		wl("oracle-db", CatServer, serverMix(640, 24*kb, 2*mb, 0.05)),
		wl("specjbb", CatServer, serverMix(384, 24*kb, 2*mb, 0.04)),
		wl("specjenterprise", CatServer, serverMix(512, 24*kb, 2*mb, 0.05)),
		wl("hadoop", CatServer, serverMix(320, 24*kb, 2*mb, 0.04)),
		wl("specpower", CatServer, serverMix(256, 24*kb, 2*mb, 0.04)),
		wl("memcached", CatServer, hashLLC(7*mb, 3, 0.03)),
		wl("nginx", CatServer, serverMix(288, 24*kb, 2*mb, 0.04)),
		wl("mysql-oltp", CatServer, serverMix(448, 24*kb, 2*mb, 0.06)),
		wl("cassandra", CatServer, serverMix(512, 24*kb, 2*mb, 0.05)),
		wl("kafka", CatServer, clientMix(2*mb, 256)),
		wl("search-idx", CatServer, gatherCritical(512*kb, 3*mb, 3)),
		wl("mail", CatServer, serverMix(320, 24*kb, 2*mb, 0.05)),

		// ---- Client (15) --------------------------------------------
		wl("sysmark-excel", CatClient, clientMix(768*kb, 128)),
		wl("facedetect", CatClient, stencilFP(2560*kb)),
		wl("h264enc", CatClient, clientMix(1536*kb, 96)),
		wl("photoedit", CatClient, crossStruct(1*mb, 512, 8, 4)),
		wl("browser", CatClient, serverMix(384, 24*kb, 2*mb, 0.06)),
		wl("pdfrender", CatClient, clientMix(1*mb, 160)),
		wl("zip", CatClient, computeInt(640*kb, 0.04)),
		wl("game-physics", CatClient, crossStruct(768*kb, 640, 10, 6)),
		wl("speech", CatClient, hashLLC(1*mb, 4, 0.04)),
		wl("ocr", CatClient, hotL2(448*kb, 4)),
		wl("spreadsheet-calc", CatClient, gatherCritical(256*kb, 768*kb, 3)),
		wl("video-edit", CatClient, streamHeavy(6*mb, false)),
		wl("antivirus", CatClient, hashLLC(1*mb, 3, 0.03)),
		wl("compile", CatClient, serverMix(448, 24*kb, 2*mb, 0.06)),
		wl("ui-compose", CatClient, clientMix(512*kb, 192)),
	}
}

// ByName returns the workload with the given name, or false.
func ByName(name string) (trace.Workload, bool) {
	for _, w := range All() {
		if w.WName == name {
			return w, true
		}
	}
	return trace.Workload{}, false
}

// ByCategory groups the study list by category.
func ByCategory() map[string][]trace.Workload {
	m := make(map[string][]trace.Workload)
	for _, w := range All() {
		m[w.WCategory] = append(m[w.WCategory], w)
	}
	return m
}

// StudyList returns a reduced, representative subset used by fast
// tests: n workloads spread across categories (n<=0 returns all).
func StudyList(n int) []trace.Workload {
	all := All()
	if n <= 0 || n >= len(all) {
		return all
	}
	out := make([]trace.Workload, 0, n)
	step := float64(len(all)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, all[int(float64(i)*step)])
	}
	return out
}
