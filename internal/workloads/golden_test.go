package workloads

import (
	"testing"

	"catch/internal/trace"
)

// streamHash folds the first n instructions of a generator into a
// single hash (FNV over the salient fields).
func streamHash(g trace.Generator, n int) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	var in trace.Inst
	for i := 0; i < n; i++ {
		g.Next(&in)
		mix(in.PC)
		mix(in.Addr)
		mix(in.Data)
		mix(uint64(in.Op))
		mix(uint64(uint8(in.Dst)) | uint64(uint8(in.Src1))<<8 | uint64(uint8(in.Src2))<<16)
		if in.Taken {
			mix(1)
		}
		if in.Mispred {
			mix(2)
		}
	}
	return h
}

// TestWorkloadStreamsSelfConsistent pins every workload's stream to the
// hash of an independent replay: any nondeterminism (map iteration,
// hidden global state, time dependence) in the generator stack fails
// this immediately.
func TestWorkloadStreamsSelfConsistent(t *testing.T) {
	for _, w := range All() {
		a := streamHash(w.NewGen(), 20_000)
		b := streamHash(w.NewGen(), 20_000)
		if a != b {
			t.Fatalf("%s: stream hash differs across instantiations", w.WName)
		}
		g := w.NewGen()
		streamHash(g, 1234) // advance
		g.Reset()
		if c := streamHash(g, 20_000); c != a {
			t.Fatalf("%s: Reset does not restore the stream", w.WName)
		}
	}
}

// TestWorkloadsAreDistinct ensures no two workloads accidentally share
// a stream (e.g. copy-pasted seeds or builders).
func TestWorkloadsAreDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, w := range All() {
		h := streamHash(w.NewGen(), 5_000)
		if prev, ok := seen[h]; ok {
			t.Fatalf("workloads %s and %s produce identical streams", prev, w.WName)
		}
		seen[h] = w.WName
	}
}
