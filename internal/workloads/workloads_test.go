package workloads

import (
	"testing"

	"catch/internal/trace"
)

func TestSeventyWorkloads(t *testing.T) {
	all := All()
	if len(all) != 70 {
		t.Fatalf("study list has %d workloads, want 70", len(all))
	}
	names := map[string]bool{}
	for _, w := range all {
		if names[w.WName] {
			t.Fatalf("duplicate workload %q", w.WName)
		}
		names[w.WName] = true
		if w.Seed == 0 {
			t.Fatalf("%s has zero seed", w.WName)
		}
	}
	for _, must := range []string{"mcf", "hmmer", "povray", "namd", "gromacs", "tpcc", "libquantum"} {
		if !names[must] {
			t.Fatalf("paper workload %q missing", must)
		}
	}
}

func TestCategoriesCovered(t *testing.T) {
	byCat := ByCategory()
	for _, cat := range Categories {
		if len(byCat[cat]) < 10 {
			t.Fatalf("category %s has only %d workloads", cat, len(byCat[cat]))
		}
	}
	if len(byCat[CatISpec]) != 12 {
		t.Fatalf("ISPEC count %d, want 12 (SPEC INT 2006)", len(byCat[CatISpec]))
	}
}

func TestEveryWorkloadGenerates(t *testing.T) {
	var in trace.Inst
	for _, w := range All() {
		g := w.NewGen()
		loads := 0
		for i := 0; i < 3000; i++ {
			if !g.Next(&in) {
				t.Fatalf("%s: stream ended", w.WName)
			}
			if in.Op == trace.OpLoad {
				loads++
			}
		}
		if loads == 0 {
			t.Fatalf("%s: no loads in 3000 instructions", w.WName)
		}
	}
}

func TestEveryWorkloadDeterministic(t *testing.T) {
	var a, b trace.Inst
	for _, w := range All() {
		g1, g2 := w.NewGen(), w.NewGen()
		for i := 0; i < 500; i++ {
			g1.Next(&a)
			g2.Next(&b)
			if a != b {
				t.Fatalf("%s: divergence at %d", w.WName, i)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("mcf"); !ok {
		t.Fatal("mcf missing")
	}
	if _, ok := ByName("not-a-workload"); ok {
		t.Fatal("invented workload found")
	}
}

func TestStudyList(t *testing.T) {
	if n := len(StudyList(10)); n != 10 {
		t.Fatalf("StudyList(10) = %d", n)
	}
	if n := len(StudyList(0)); n != 70 {
		t.Fatalf("StudyList(0) = %d", n)
	}
	if n := len(StudyList(1000)); n != 70 {
		t.Fatalf("StudyList(1000) = %d", n)
	}
	// The reduced list must span several categories.
	cats := map[string]bool{}
	for _, w := range StudyList(10) {
		cats[w.WCategory] = true
	}
	if len(cats) < 3 {
		t.Fatalf("StudyList(10) covers only %d categories", len(cats))
	}
}

func TestMixes(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 60 {
		t.Fatalf("mix count %d, want 60", len(mixes))
	}
	rate4 := 0
	for _, m := range mixes {
		for _, p := range m.Parts {
			if p.WName == "" {
				t.Fatalf("mix %s has an empty slot", m.Name)
			}
		}
		if m.Parts[0].WName == m.Parts[1].WName &&
			m.Parts[1].WName == m.Parts[2].WName &&
			m.Parts[2].WName == m.Parts[3].WName {
			rate4++
		}
	}
	if rate4 != 30 {
		t.Fatalf("RATE-4 mixes = %d, want 30", rate4)
	}
}

func TestMixGens(t *testing.T) {
	m := Mixes()[0]
	gens := m.Gens()
	if len(gens) != 4 {
		t.Fatalf("Gens returned %d", len(gens))
	}
	var in trace.Inst
	for i, g := range gens {
		if !g.Next(&in) {
			t.Fatalf("mix gen %d dead", i)
		}
	}
}

func TestWorkloadsHaveBoundedFootprint(t *testing.T) {
	// Prewarm regions must fit comfortably on die (< 16MB total each),
	// or prewarming would thrash the LLC it populates.
	for _, w := range All() {
		g := w.NewGen()
		pw, ok := g.(trace.Prewarmer)
		if !ok {
			continue
		}
		var total uint64
		for _, r := range pw.PrewarmRegions() {
			total += r.Size
		}
		if total > 16<<20 {
			t.Fatalf("%s prewarms %d bytes", w.WName, total)
		}
	}
}
