package workloads

import (
	"fmt"

	"catch/internal/trace"
)

// Mix is a four-way multi-programmed workload.
type Mix struct {
	Name  string
	Parts [4]trace.Workload
}

// Gens instantiates fresh generators for the mix.
func (m *Mix) Gens() []trace.Generator {
	out := make([]trace.Generator, 4)
	for i := range m.Parts {
		out[i] = m.Parts[i].NewGen()
	}
	return out
}

// Mixes returns the 60 four-way MP workloads: 30 RATE-4 style (four
// copies of one application) and 30 pseudo-random mixes drawn from the
// ST study list (§V).
func Mixes() []Mix {
	all := All()
	var out []Mix

	// RATE-4: every other workload from the study list, 30 total.
	for i := 0; len(out) < 30 && i < len(all); i += 2 {
		w := all[i]
		var m Mix
		m.Name = "rate4-" + w.WName
		for k := 0; k < 4; k++ {
			m.Parts[k] = w
		}
		out = append(out, m)
	}

	// Random mixes: deterministic draws from the full list.
	rng := trace.NewRNG(0xC0FFEE)
	for j := 0; j < 30; j++ {
		var m Mix
		m.Name = fmt.Sprintf("mix-%02d", j)
		used := map[int]bool{}
		for k := 0; k < 4; k++ {
			idx := rng.Intn(len(all))
			for used[idx] {
				idx = rng.Intn(len(all))
			}
			used[idx] = true
			m.Parts[k] = all[idx]
		}
		out = append(out, m)
	}
	return out
}
