module catch

go 1.22
